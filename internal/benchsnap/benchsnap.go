// Package benchsnap produces and checks schema-versioned benchmark
// snapshots (the checked-in BENCH_*.json artifacts). A snapshot records what
// a suite of measurements cost on a described host — ns/op, allocs/op,
// scheduler latency quantiles, parallel speedups — so CI can hold the
// current tree against the committed baseline and the repository's perf
// history stays reviewable in ordinary diffs.
//
// The regression policy is split by signal quality (see Compare): wall-clock
// ns/op is machine- and load-dependent, so drift only warns; allocs/op is a
// deterministic property of the code under a fixed workload, so growth
// beyond tolerance is a hard failure.
package benchsnap

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"racefuzzer/internal/schedprof"
)

// SchemaVersion identifies the snapshot layout. Compare refuses to check a
// snapshot against a baseline with a different schema — regenerate the
// baseline instead of guessing at field semantics.
const SchemaVersion = 1

// Host describes the machine a snapshot was measured on. Numbers from
// different hosts are not comparable; the host block makes a baseline's
// provenance explicit in the diff.
type Host struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentHost describes the running machine. The CPU model comes from
// /proc/cpuinfo when readable (Linux) and degrades to the architecture name
// elsewhere.
func CurrentHost() Host {
	return Host{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpuModel(),
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOARCH
}

// Result is one measured benchmark within a suite.
type Result struct {
	Name string `json:"name"`
	// Iters is the number of iterations the calibrated measurement ran.
	Iters int `json:"iters"`
	// NsPerOp is wall-clock nanoseconds per iteration (warn-only in Compare).
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is heap allocations per iteration (hard-fail in Compare).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics carries suite-specific extras (steps/op, real races, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one suite's measurement artifact — the JSON schema of the
// checked-in BENCH_*.json files.
type Snapshot struct {
	Schema      int      `json:"schema"`
	Suite       string   `json:"suite"`
	Description string   `json:"description"`
	Date        string   `json:"date"`
	Host        Host     `json:"host"`
	Benchtime   string   `json:"benchtime"`
	Results     []Result `json:"results"`
	// SchedSummary is the sched suite's per-op-kind latency aggregate
	// (wait/service quantiles), measured by a schedprof.Collector attached to
	// a profiled campaign.
	SchedSummary *schedprof.Summary `json:"sched_summary,omitempty"`
	// SpeedupVsWidth is the parallel suite's wall-clock ratio of the
	// sequential run to each wider executor configuration (>1 = faster).
	SpeedupVsWidth map[string]float64 `json:"speedup_vs_width,omitempty"`
	Note           string             `json:"note,omitempty"`
}

// Stamp fills in the environment-dependent header fields (date, host) that
// the suites leave blank so their measurement logic stays deterministic.
func (s *Snapshot) Stamp(now time.Time) {
	s.Date = now.UTC().Format("2006-01-02")
	s.Host = CurrentHost()
}

// Save writes the snapshot as indented JSON, the checked-in artifact format.
func (s *Snapshot) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a snapshot written by Save.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// measureCapIters bounds calibration growth against pathological clocks.
const measureCapIters = 1 << 20

// Measure times fn with a calibrating iteration loop, growing the count
// until one timed batch spans at least minTime (testing.B's strategy, inside
// a library so cmd/benchsnap needs no test binary). Allocations are the
// process-wide Mallocs delta across the batch divided by iterations: the
// scheduler's worker goroutines allocate on behalf of the run, and a
// per-goroutine counter would miss them.
func Measure(name string, minTime time.Duration, fn func()) Result {
	fn() // warm-up: first-use initialization should not be charged
	n := 1
	for {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < n; i++ {
			fn()
		}
		dur := time.Since(start)
		runtime.ReadMemStats(&after)
		if dur >= minTime || n >= measureCapIters {
			return Result{
				Name:        name,
				Iters:       n,
				NsPerOp:     float64(dur.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(n),
			}
		}
		// Predict the iteration count that lands past minTime, with 20%
		// headroom, bounded to [n+1, 100n] like the stdlib harness.
		next := n + 1
		if dur > 0 {
			next = int(1.2 * float64(n) * float64(minTime) / float64(dur))
		}
		if next < n+1 {
			next = n + 1
		}
		if next > 100*n {
			next = 100 * n
		}
		n = next
	}
}
