package benchsnap

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestMeasureCalibratesAndCountsAllocs(t *testing.T) {
	calls := 0
	res := Measure("alloc3", 20*time.Millisecond, func() {
		calls++
		sink = make([]byte, 64)
		sink = append(sink, make([]byte, 128)...)
		time.Sleep(100 * time.Microsecond)
	})
	if res.Iters < 2 {
		t.Fatalf("calibration never grew: %+v", res)
	}
	// The warm-up call runs outside the timed batch.
	if calls != res.Iters+1 && calls < res.Iters {
		t.Fatalf("calls=%d vs iters=%d", calls, res.Iters)
	}
	if res.NsPerOp < float64(50*time.Microsecond) {
		t.Fatalf("ns/op %f implausibly small for a 100µs sleep", res.NsPerOp)
	}
	// Two allocations per op, with slack for runtime/timer internals.
	if res.AllocsPerOp < 2 || res.AllocsPerOp > 64 {
		t.Fatalf("allocs/op = %f, want ~2", res.AllocsPerOp)
	}
}

var sink []byte

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	s := &Snapshot{
		Schema: SchemaVersion, Suite: "x", Description: "d", Benchtime: "1ms",
		Results: []Result{{Name: "a", Iters: 3, NsPerOp: 10, AllocsPerOp: 2,
			Metrics: map[string]float64{"m": 1}}},
		SpeedupVsWidth: map[string]float64{"workers=2": 1.5},
	}
	s.Stamp(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	if s.Date != "2026-08-08" {
		t.Fatalf("Date = %q", s.Date)
	}
	if s.Host.Cores <= 0 || s.Host.GOOS == "" || s.Host.CPU == "" {
		t.Fatalf("host not described: %+v", s.Host)
	}
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// The artifact is plain indented JSON (diff-reviewable).
	data, _ := os.ReadFile(path)
	if !json.Valid(data) || !strings.HasPrefix(string(data), "{\n  \"schema\": 1,") {
		t.Fatalf("artifact not indented JSON:\n%s", data)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != "x" || len(got.Results) != 1 || got.Results[0].Metrics["m"] != 1 ||
		got.SpeedupVsWidth["workers=2"] != 1.5 {
		t.Fatalf("round trip lost data: %+v", got)
	}
}

func base() *Snapshot {
	return &Snapshot{Schema: SchemaVersion, Suite: "sched", Results: []Result{
		{Name: "a", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "b", NsPerOp: 2000, AllocsPerOp: 1000},
	}}
}

func TestCompareClean(t *testing.T) {
	cur := base()
	warns, fails := Compare(cur, base(), CheckOptions{})
	if len(warns) != 0 || len(fails) != 0 {
		t.Fatalf("identical snapshots flagged: warns=%v fails=%v", warns, fails)
	}
}

func TestCompareAllocRegressionIsHardFailure(t *testing.T) {
	cur := base()
	cur.Results[1].AllocsPerOp = 1200 // +20% > 10% tolerance + 64 slack
	warns, fails := Compare(cur, base(), CheckOptions{})
	if len(fails) != 1 || !strings.Contains(fails[0], "b: allocs/op 1200") {
		t.Fatalf("alloc regression not a failure: warns=%v fails=%v", warns, fails)
	}
	// Within tolerance+slack passes.
	cur.Results[1].AllocsPerOp = 1100
	if _, fails := Compare(cur, base(), CheckOptions{}); len(fails) != 0 {
		t.Fatalf("in-tolerance allocs failed: %v", fails)
	}
	// Slack protects near-zero baselines from off-by-a-few noise.
	cur = base()
	cur.Results[0].AllocsPerOp = 130
	if _, fails := Compare(cur, base(), CheckOptions{}); len(fails) != 0 {
		t.Fatalf("slack did not absorb small absolute growth: %v", fails)
	}
}

func TestCompareNsDriftOnlyWarns(t *testing.T) {
	cur := base()
	cur.Results[0].NsPerOp = 10000 // 10x
	warns, fails := Compare(cur, base(), CheckOptions{})
	if len(fails) != 0 {
		t.Fatalf("wall-clock drift hard-failed: %v", fails)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "10.0x baseline") {
		t.Fatalf("no drift warning: %v", warns)
	}
}

func TestCompareMissingAndNewBenchmarks(t *testing.T) {
	cur := base()
	cur.Results = cur.Results[:1]
	cur.Results = append(cur.Results, Result{Name: "c", NsPerOp: 1, AllocsPerOp: 1})
	warns, fails := Compare(cur, base(), CheckOptions{})
	if len(fails) != 1 || !strings.Contains(fails[0], `"b" in baseline but not measured`) {
		t.Fatalf("disappeared benchmark not a failure: %v", fails)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], `"c" has no baseline`) {
		t.Fatalf("new benchmark not warned: %v", warns)
	}
}

func TestCompareSchemaMismatchFails(t *testing.T) {
	cur := base()
	b := base()
	b.Schema = SchemaVersion + 1
	_, fails := Compare(cur, b, CheckOptions{})
	if len(fails) != 1 || !strings.Contains(fails[0], "schema mismatch") {
		t.Fatalf("schema mismatch not failed: %v", fails)
	}
	b = base()
	b.Suite = "parallel"
	if _, fails := Compare(cur, b, CheckOptions{}); len(fails) != 1 {
		t.Fatalf("suite mismatch not failed: %v", fails)
	}
}

// TestSchedSuiteShape runs the real sched suite at a tiny benchtime and
// checks the snapshot carries everything the checked-in artifact needs.
func TestSchedSuiteShape(t *testing.T) {
	snap, tl := SchedSuite(SuiteOptions{Benchtime: 5 * time.Millisecond})
	if snap.Schema != SchemaVersion || snap.Suite != "sched" {
		t.Fatalf("header: %+v", snap)
	}
	names := map[string]Result{}
	for _, r := range snap.Results {
		names[r.Name] = r
		if r.NsPerOp <= 0 || r.Iters <= 0 {
			t.Fatalf("unmeasured result %+v", r)
		}
		if r.Metrics["steps_per_op"] <= 0 || r.Metrics["ns_per_step"] <= 0 {
			t.Fatalf("missing step metrics: %+v", r)
		}
	}
	for _, want := range []string{
		"grant_serial/ops=256", "grant_ping/rounds=64",
		"grant_fanout/threads=8,ops=16", "grant_serial_profiled/ops=256",
	} {
		if _, ok := names[want]; !ok {
			t.Fatalf("suite missing %q: %v", want, snap.Results)
		}
	}
	if snap.SchedSummary == nil || snap.SchedSummary.Trials != 60 || snap.SchedSummary.Grants == 0 {
		t.Fatalf("latency pass missing or wrong size: %+v", snap.SchedSummary)
	}
	hasLatency := false
	for _, op := range snap.SchedSummary.Ops {
		if op.Count > 0 && op.Service.P99 > 0 {
			hasLatency = true
		}
	}
	if !hasLatency {
		t.Fatal("sched summary has no per-op-kind quantiles")
	}
	if tl == nil || len(tl.Spans) == 0 {
		t.Fatal("no sample timeline for the CI artifact")
	}
}
