package corpus

import (
	"reflect"
	"testing"
)

func sumInts(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

func TestAllocateConservesBudgetAndIsDeterministic(t *testing.T) {
	targets := []TargetState{
		{Name: "a", NewSignatures: 3},
		{Name: "b", NewSignatures: 0, NewCells: 2},
		{Name: "c", DryRounds: PlateauRounds},
		{Name: "d"},
	}
	for _, total := range []int{0, 1, 4, 7, 100, 101, 999} {
		first := Allocate(total, targets)
		if got := sumInts(first); got != total {
			t.Fatalf("total %d: allocation sums to %d: %v", total, got, first)
		}
		for i := 0; i < 5; i++ {
			if again := Allocate(total, targets); !reflect.DeepEqual(again, first) {
				t.Fatalf("total %d: allocation not deterministic: %v vs %v", total, again, first)
			}
		}
	}
}

func TestAllocateBiasesTowardDiscovery(t *testing.T) {
	targets := []TargetState{
		{Name: "hot", NewSignatures: 5},
		{Name: "cold"},
		{Name: "flat", DryRounds: PlateauRounds},
	}
	got := Allocate(100, targets)
	if got[0] <= got[1] || got[1] <= got[2] {
		t.Fatalf("allocation %v not ordered hot > cold > plateaued", got)
	}
	if got[2] == 0 {
		t.Fatalf("plateaued target starved entirely: %v (exploration floor expected)", got)
	}
}

func TestAllocateMinimumOneTrialPerTarget(t *testing.T) {
	targets := []TargetState{
		{Name: "hot", NewSignatures: 100},
		{Name: "a"}, {Name: "b"}, {Name: "c"},
	}
	got := Allocate(4, targets)
	if sumInts(got) != 4 {
		t.Fatalf("allocation %v does not sum to 4", got)
	}
	for i, n := range got {
		if n == 0 {
			t.Fatalf("target %d starved with budget >= #targets: %v", i, got)
		}
	}
}

func TestAdvanceTracksPlateau(t *testing.T) {
	s := TargetState{Name: "x"}
	s = s.Advance(0, 0)
	if s.Plateaued() {
		t.Fatalf("plateaued after one dry round: %+v", s)
	}
	s = s.Advance(0, 0)
	if !s.Plateaued() {
		t.Fatalf("not plateaued after %d dry rounds: %+v", PlateauRounds, s)
	}
	s = s.Advance(1, 0)
	if s.Plateaued() || s.DryRounds != 0 {
		t.Fatalf("discovery did not reset plateau: %+v", s)
	}
}
