package corpus

// Interleaving-coverage feedback: each confirmed outcome of a directed run
// is one cell — (finding signature, resolution branch). For races the
// branch is the random resolution order ("candidate-first" /
// "postponed-first", §3's coin flip); deadlocks have a single branch;
// atomicity violations are keyed by the interfering statement. A target
// whose campaigns stop producing new cells (and new signatures) has
// plateaued: its schedules keep re-creating outcomes the corpus has
// already seen, which is the adaptive allocator's signal to shift budget
// elsewhere ("Fuzzing at Scale"-style).

// CoverageCell is one (signature, branch) outcome with its hit count.
type CoverageCell struct {
	Sig    Signature `json:"sig"`
	Branch string    `json:"branch"`
	Hits   int64     `json:"hits"`
}

// key identifies the cell.
func (c CoverageCell) key() string { return c.Sig.Canon() + "|" + c.Branch }

// Coverage is the in-memory cell map. It is not self-locking — the Store
// guards it.
type Coverage struct {
	byKey map[string]*CoverageCell
	order []string
}

// NewCoverage returns an empty map.
func NewCoverage() *Coverage {
	return &Coverage{byKey: make(map[string]*CoverageCell)}
}

// observe folds one outcome in; reports whether the cell is new.
func (c *Coverage) observe(sig Signature, branch string) bool {
	cell := CoverageCell{Sig: sig, Branch: branch}
	k := cell.key()
	if old, ok := c.byKey[k]; ok {
		old.Hits++
		return false
	}
	cell.Hits = 1
	c.byKey[k] = &cell
	c.order = append(c.order, k)
	return true
}

// load seeds the map from persisted cells (first occurrence wins).
func (c *Coverage) load(cells []CoverageCell) {
	for i := range cells {
		cell := cells[i]
		k := cell.key()
		if _, ok := c.byKey[k]; ok {
			continue
		}
		c.byKey[k] = &cell
		c.order = append(c.order, k)
	}
}

// cells snapshots the map in first-observation order.
func (c *Coverage) cells() []CoverageCell {
	out := make([]CoverageCell, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, *c.byKey[k])
	}
	return out
}
