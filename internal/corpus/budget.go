package corpus

// The adaptive budget allocator: split a global phase-2 trial budget across
// registry targets, biasing toward targets that are still producing new
// signatures and new coverage cells — a deterministic bandit. There is no
// sampling: the weights are a pure function of the per-target discovery
// state, so for a fixed master seed the whole campaign (allocation rounds
// included) is bit-identical at any worker count.

// TargetState is the allocator's view of one target between rounds.
type TargetState struct {
	// Name is the registry benchmark name.
	Name string
	// NewSignatures and NewCells are the target's discoveries in the
	// previous round (0 on the first round, when nothing is known and the
	// split is uniform).
	NewSignatures int
	NewCells      int
	// DryRounds counts consecutive completed rounds with no new signature
	// and no new coverage cell; a target with DryRounds >= PlateauRounds is
	// plateaued and drops to the exploration floor.
	DryRounds int
}

// PlateauRounds is the number of consecutive discovery-free rounds after
// which a target counts as plateaued.
const PlateauRounds = 2

// Plateaued reports whether the target has gone dry.
func (t TargetState) Plateaued() bool { return t.DryRounds >= PlateauRounds }

// weight converts discovery state into an allocation weight. New signatures
// dominate (a target still finding distinct bugs deserves the budget), new
// coverage cells keep a target warm, and every non-plateaued target keeps
// weight even when dry — one quiet round must not starve it. Plateaued
// targets drop to a minimal exploration floor instead of zero, so a target
// that develops new behaviour (new code, deeper schedules) can re-earn
// budget.
func (t TargetState) weight() int {
	if t.Plateaued() {
		return 1
	}
	return 4 + 8*t.NewSignatures + 2*t.NewCells
}

// Allocate splits total trials across targets proportionally to their
// weights, deterministically: integer largest-remainder rounding with ties
// broken by target order. len(result) == len(targets); the results sum to
// total (0 <= total). Every target with positive weight gets at least one
// trial when total >= len(targets), so no target is silently dropped.
func Allocate(total int, targets []TargetState) []int {
	n := len(targets)
	out := make([]int, n)
	if n == 0 || total <= 0 {
		return out
	}
	weights := make([]int, n)
	sum := 0
	for i, t := range targets {
		w := t.weight()
		if w < 1 {
			w = 1
		}
		weights[i] = w
		sum += w
	}
	type rem struct {
		idx  int
		frac int // remainder numerator (denominator sum), for sorting
	}
	assigned := 0
	rems := make([]rem, n)
	for i, w := range weights {
		share := total * w
		out[i] = share / sum
		rems[i] = rem{idx: i, frac: share % sum}
		assigned += out[i]
	}
	// Distribute the leftover trials to the largest remainders; ties go to
	// the earlier target — a total order, so the result is deterministic.
	left := total - assigned
	for k := 0; k < left; k++ {
		best := -1
		for i := range rems {
			if rems[i].frac < 0 {
				continue
			}
			if best < 0 || rems[i].frac > rems[best].frac {
				best = i
			}
		}
		out[rems[best].idx]++
		rems[best].frac = -1
	}
	// Guarantee a minimum of one trial per target while the budget covers
	// it: steal from the richest targets (ties to the later one, so earlier
	// allocations are disturbed least).
	if total >= n {
		for i := range out {
			for out[i] == 0 {
				rich := 0
				for j := 1; j < n; j++ {
					if out[j] >= out[rich] {
						rich = j
					}
				}
				if out[rich] <= 1 {
					break
				}
				out[rich]--
				out[i]++
			}
		}
	}
	return out
}

// Advance folds one round's outcome into the target's state: its discovery
// counts are replaced and the dry-round counter updated.
func (t TargetState) Advance(newSigs, newCells int) TargetState {
	t.NewSignatures = newSigs
	t.NewCells = newCells
	if newSigs == 0 && newCells == 0 {
		t.DryRounds++
	} else {
		t.DryRounds = 0
	}
	return t
}
