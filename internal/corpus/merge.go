package corpus

// Batch ingestion and store merging: the fleet coordinator's side of the
// merge protocol. Workers execute leased trial batches against fresh
// in-memory stores and report their findings and coverage cells back as
// pre-aggregated batches; the coordinator folds those batches into the one
// authoritative campaign store. Folding a batch entry whose Hits counts h
// sightings is equivalent to h sequential Report calls (and likewise for
// coverage-cell hits), so a fleet campaign's corpus — signatures, hit
// counts, session new/known tallies — matches the single-process campaign
// that ran the same trials in the same order.

// MergeStats tallies what one batch (or store) merge contributed.
type MergeStats struct {
	// NewSignatures counts signatures first seen in this merge;
	// KnownSightings counts sightings deduplicated against entries that
	// already existed (including extra sightings of a signature the same
	// merge introduced).
	NewSignatures  int64
	KnownSightings int64
	// NewCells and KnownCellHits are the coverage-map equivalents.
	NewCells      int64
	KnownCellHits int64
}

// Ingest folds one pre-aggregated finding into the store and reports whether
// its signature is new. f.Hits counts the sightings the entry aggregates
// (clamped to at least one); for a known signature the stored entry's Hits
// grow by that many, LastSeenSeed advances and Exceptions are unioned — the
// exact state h sequential Report calls would have left. The session
// new/known counters advance the same way, so dedup-rate metrics are
// batch-order independent.
func (s *Store) Ingest(f Finding) (isNew bool) {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestLocked(f)
}

func (s *Store) ingestLocked(f Finding) (isNew bool) {
	hits := f.Hits
	if hits < 1 {
		hits = 1
	}
	k := f.Sig.Canon()
	if old, ok := s.byCanon[k]; ok {
		old.Hits += hits
		old.LastSeenSeed = f.LastSeenSeed
		old.Exceptions = mergeSorted(old.Exceptions, f.Exceptions)
		s.knownSigs += hits
		return false
	}
	nf := f
	nf.Hits = hits
	nf.Exceptions = mergeSorted(nil, f.Exceptions)
	s.byCanon[k] = &nf
	s.order = append(s.order, k)
	s.newSigs++
	s.knownSigs += hits - 1
	return true
}

// IngestCell folds one pre-aggregated coverage cell into the interleaving-
// coverage map and reports whether the cell is new. c.Hits (clamped to at
// least one) is the number of Observe calls the entry stands for.
func (s *Store) IngestCell(c CoverageCell) (isNew bool) {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestCellLocked(c)
}

func (s *Store) ingestCellLocked(c CoverageCell) (isNew bool) {
	hits := c.Hits
	if hits < 1 {
		hits = 1
	}
	k := c.key()
	if old, ok := s.cov.byKey[k]; ok {
		old.Hits += hits
		return false
	}
	nc := c
	nc.Hits = hits
	s.cov.byKey[k] = &nc
	s.cov.order = append(s.cov.order, k)
	return true
}

// Merge folds every finding and coverage cell of other into s, in other's
// first-report order, and reports what the merge contributed. Witness-trace
// paths are resolved against other's directory first, so merged entries keep
// pointing at real files wherever the source corpus lived. Merge snapshots
// other before touching s — the two stores are never locked together — so
// concurrent merges of disjoint batch stores into one target are safe (and
// exercised under -race).
func (s *Store) Merge(other *Store) MergeStats {
	var st MergeStats
	if s == nil || other == nil {
		return st
	}
	findings := other.Findings()
	cells := other.Coverage()
	for i := range findings {
		f := findings[i]
		f.WitnessTrace = other.WitnessPath(f)
		hits := f.Hits
		if hits < 1 {
			hits = 1
		}
		if s.Ingest(f) {
			st.NewSignatures++
			st.KnownSightings += hits - 1
		} else {
			st.KnownSightings += hits
		}
	}
	for _, c := range cells {
		hits := c.Hits
		if hits < 1 {
			hits = 1
		}
		if s.IngestCell(c) {
			st.NewCells++
			st.KnownCellHits += hits - 1
		} else {
			st.KnownCellHits += hits
		}
	}
	return st
}
