package corpus

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"racefuzzer/internal/obs"
)

func sig(kind, a, b, outcome string) Signature { return MakeSignature(kind, a, b, outcome) }

func TestSignatureNormalization(t *testing.T) {
	a := sig("race", "f.go:10", "f.go:3", "race")
	b := sig("race", "f.go:3", "f.go:10", "race")
	if a != b {
		t.Fatalf("signature not order-normalized: %v vs %v", a, b)
	}
	if a.LocA != "f.go:10" || a.LocB != "f.go:3" {
		t.Fatalf("unexpected sort order: %+v (lexicographic expected)", a)
	}
	if got, want := a.Canon(), "race|f.go:10|f.go:3|race"; got != want {
		t.Fatalf("Canon() = %q, want %q", got, want)
	}
}

func TestReportDedupAndHits(t *testing.T) {
	s := NewStore()
	f := Finding{Sig: sig("race", "a", "b", "race"), Bench: "figure1", FirstSeenSeed: 1, Exceptions: []string{"BOOM"}}
	if !s.Report(f) {
		t.Fatal("first report not new")
	}
	f2 := f
	f2.FirstSeenSeed = 99
	f2.Exceptions = []string{"BANG"}
	if s.Report(f2) {
		t.Fatal("second report of same signature reported new")
	}
	fs := s.Findings()
	if len(fs) != 1 {
		t.Fatalf("len(Findings) = %d, want 1", len(fs))
	}
	got := fs[0]
	if got.Hits != 2 || got.FirstSeenSeed != 1 || got.LastSeenSeed != 99 {
		t.Fatalf("merged finding = %+v", got)
	}
	if !reflect.DeepEqual(got.Exceptions, []string{"BANG", "BOOM"}) {
		t.Fatalf("exceptions not merged sorted: %v", got.Exceptions)
	}
	if n, k := s.Counts(); n != 1 || k != 1 {
		t.Fatalf("Counts = (%d, %d), want (1, 1)", n, k)
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Report(Finding{Sig: sig("race", "a", "b", "race"), Bench: "figure1", FirstSeenSeed: 7, WitnessSeed: 12, Phase1Trials: 3})
	s.Report(Finding{Sig: sig("deadlock", "c", "d", "deadlock"), Bench: "dl", FirstSeenSeed: 7, WitnessSeed: 44})
	s.Observe(sig("race", "a", "b", "race"), "candidate-first")
	s.Observe(sig("race", "a", "b", "race"), "postponed-first")
	s.Observe(sig("race", "a", "b", "race"), "candidate-first")
	s.AttachWitness(sig("race", "a", "b", "race"), filepath.Join(dir, "witnesses", "w.trace.jsonl"))
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.Truncated() {
		t.Fatal("clean save reported truncated")
	}
	if !reflect.DeepEqual(r.Findings(), s.Findings()) {
		t.Fatalf("findings did not roundtrip:\n got %+v\nwant %+v", r.Findings(), s.Findings())
	}
	if !reflect.DeepEqual(r.Coverage(), s.Coverage()) {
		t.Fatalf("coverage did not roundtrip:\n got %+v\nwant %+v", r.Coverage(), s.Coverage())
	}
	// The witness path is stored relative to the corpus dir (relocatable)
	// and resolved back on demand.
	f := r.Findings()[0]
	if f.WitnessTrace != filepath.Join(WitnessSubdir, "w.trace.jsonl") {
		t.Fatalf("witness not stored relative: %q", f.WitnessTrace)
	}
	if got, want := r.WitnessPath(f), filepath.Join(dir, WitnessSubdir, "w.trace.jsonl"); got != want {
		t.Fatalf("WitnessPath = %q, want %q", got, want)
	}
	// A re-reported known signature keeps its witness baseline.
	if r.Report(Finding{Sig: sig("race", "a", "b", "race"), FirstSeenSeed: 1000}) {
		t.Fatal("loaded signature reported new")
	}
	if n, k := r.Counts(); n != 0 || k != 1 {
		t.Fatalf("after reload Counts = (%d, %d), want (0, 1)", n, k)
	}
}

func TestLoadSkipsTruncatedFinalLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Report(Finding{Sig: sig("race", "a", "b", "race"), Bench: "x", FirstSeenSeed: 1})
	s.Report(Finding{Sig: sig("race", "c", "d", "race"), Bench: "x", FirstSeenSeed: 1})
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: cut the final record in half.
	path := filepath.Join(dir, findingsFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := b[:len(b)-len(b)/4]
	if cut[len(cut)-1] == '\n' {
		cut = cut[:len(cut)-1]
	}
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("truncated corpus failed to load: %v", err)
	}
	if !r.Truncated() {
		t.Fatal("truncated load not flagged")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d after truncation, want 1 (partial record skipped)", r.Len())
	}

	// A corrupt line mid-file is NOT a crash footprint and must still fail.
	lines := []string{`{"sig":{"kind":"race","locA":"a","locB":"b","outcome":"race"},"hits":1}`, "{corrupt", `{"sig":{"kind":"race","locA":"c","locB":"d","outcome":"race"},"hits":1}`}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("mid-file corruption loaded without error")
	}
}

func TestOpenRejectsNewerVersion(t *testing.T) {
	dir := t.TempDir()
	m, _ := json.Marshal(manifest{V: FormatVersion + 1})
	if err := os.WriteFile(filepath.Join(dir, manifestFile), m, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("newer-version corpus: err = %v, want unsupported-version error", err)
	}
}

// TestConcurrentReportSameSignature is the -race check: parallel workers
// reporting the same signature must be race-free, and exactly one of them
// must see it as new.
func TestConcurrentReportSameSignature(t *testing.T) {
	s := NewStore()
	const workers = 8
	const perWorker = 200
	newCount := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if s.Report(Finding{Sig: sig("race", "a", "b", "race"), Bench: "x", FirstSeenSeed: int64(i)}) {
					newCount[w]++
				}
				s.Observe(sig("race", "a", "b", "race"), "candidate-first")
				s.Known(sig("race", "a", "b", "race"))
				s.Findings()
				s.Coverage()
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range newCount {
		total += n
	}
	if total != 1 {
		t.Fatalf("%d workers saw the signature as new, want exactly 1", total)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	fs := s.Findings()
	if fs[0].Hits != workers*perWorker {
		t.Fatalf("Hits = %d, want %d", fs[0].Hits, workers*perWorker)
	}
	cov := s.Coverage()
	if len(cov) != 1 || cov[0].Hits != workers*perWorker {
		t.Fatalf("coverage = %+v, want one cell with %d hits", cov, workers*perWorker)
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	if !s.Report(Finding{Sig: sig("race", "a", "b", "race")}) {
		t.Fatal("nil store Report should report new (no dedup)")
	}
	s.AttachWitness(sig("race", "a", "b", "race"), "p")
	s.Observe(sig("race", "a", "b", "race"), "x")
	if s.Known(sig("race", "a", "b", "race")) || s.Len() != 0 || s.CoverageLen() != 0 {
		t.Fatal("nil store should be empty")
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageReloadSurvivesTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(sig("race", "a", "b", "race"), "candidate-first")
	s.Observe(sig("race", "a", "b", "race"), "postponed-first")
	s.Observe(sig("deadlock", "c", "d", "deadlock"), "deadlock")
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	// Cut the final coverage record in half: the crash-mid-write footprint.
	path := filepath.Join(dir, coverageFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := b[:len(b)-len(b)/5]
	if cut[len(cut)-1] == '\n' {
		cut = cut[:len(cut)-1]
	}
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("torn coverage file failed to load: %v", err)
	}
	if !r.Truncated() {
		t.Fatal("torn coverage load not flagged")
	}
	if r.CoverageLen() != 2 {
		t.Fatalf("CoverageLen = %d after tear, want 2 (partial cell skipped)", r.CoverageLen())
	}
	// The surviving cells keep their identity: re-observing them is a dup,
	// while the torn-away cell is rediscovered as new.
	if r.Observe(sig("race", "a", "b", "race"), "candidate-first") {
		t.Fatal("surviving cell re-observed as new")
	}
	if !r.Observe(sig("deadlock", "c", "d", "deadlock"), "deadlock") {
		t.Fatal("torn-away cell not rediscovered as new")
	}
}

func TestObserveDedupMatchesReloadedStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type obsCall struct {
		sig    Signature
		branch string
	}
	calls := []obsCall{
		{sig("race", "a", "b", "race"), "candidate-first"},
		{sig("race", "a", "b", "race"), "postponed-first"},
		{sig("race", "a", "b", "race"), "candidate-first"},
		{sig("atomicity", "p", "q", "violation"), "clean"},
		{sig("atomicity", "p", "q", "violation"), "threw"},
	}
	var fresh []bool
	for _, c := range calls {
		fresh = append(fresh, s.Observe(c.sig, c.branch))
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if r.CoverageLen() != s.CoverageLen() {
		t.Fatalf("reloaded CoverageLen = %d, want %d", r.CoverageLen(), s.CoverageLen())
	}
	// Replaying the same observations against the reloaded store must dedup
	// every one: each cell is already on disk.
	for i, c := range calls {
		if r.Observe(c.sig, c.branch) {
			t.Fatalf("call %d (%v/%s) new against reloaded store (fresh run said %v)",
				i, c.sig, c.branch, fresh[i])
		}
	}
	// Hits accumulate across the save/load boundary.
	want := map[string]int64{}
	for _, c := range calls {
		want[c.sig.Canon()+"|"+c.branch] += 2 // once pre-save, once post-reload
	}
	for _, cell := range r.Coverage() {
		if got := cell.Hits; got != want[cell.Sig.Canon()+"|"+cell.Branch] {
			t.Fatalf("cell %v/%s Hits = %d, want %d", cell.Sig, cell.Branch, got, want[cell.Sig.Canon()+"|"+cell.Branch])
		}
	}
}

func TestManifestProvenanceRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Provenance() != nil {
		t.Fatal("fresh store has provenance")
	}
	s.Report(Finding{Sig: sig("race", "a", "b", "race"), Bench: "x"})
	s.SetProvenance(obs.Provenance{Tool: "racefuzzer", Label: "nightly", Config: "seed=1"})
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Provenance()
	if p == nil || p.Tool != "racefuzzer" || p.Label != "nightly" || p.Config != "seed=1" {
		t.Fatalf("reloaded provenance = %+v", p)
	}
	// Pre-provenance corpora (no field in MANIFEST.json) still load.
	m, _ := json.Marshal(map[string]int{"v": FormatVersion, "findings": 1, "coverage": 0})
	if err := os.WriteFile(filepath.Join(dir, manifestFile), m, 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := Open(dir)
	if err != nil {
		t.Fatalf("provenance-less manifest failed to load: %v", err)
	}
	if old.Provenance() != nil {
		t.Fatal("provenance-less manifest produced provenance")
	}
}

// TestLoadToleratesCRLF: a corpus whose JSONL files picked up Windows line
// endings in transit (git autocrlf, scp from a Windows worker) must load
// exactly like the LF original — the same tolerance the loader already
// extends to blank lines and torn final lines.
func TestLoadToleratesCRLF(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.Report(Finding{Sig: sig("race", "a", "b", "race"), Bench: "figure1", FirstSeenSeed: 7})
	s.Report(Finding{Sig: sig("deadlock", "c", "d", "deadlock"), Bench: "dl", FirstSeenSeed: 9})
	s.Observe(sig("race", "a", "b", "race"), "candidate-first")
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{findingsFile, coverageFile} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		crlf := strings.ReplaceAll(string(data), "\n", "\r\n")
		if err := os.WriteFile(path, []byte(crlf), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("CRLF corpus rejected: %v", err)
	}
	if r.Truncated() {
		t.Fatal("CRLF corpus flagged truncated")
	}
	if !reflect.DeepEqual(r.Findings(), s.Findings()) {
		t.Fatalf("CRLF findings diverge:\n got %+v\nwant %+v", r.Findings(), s.Findings())
	}
	if !reflect.DeepEqual(r.Coverage(), s.Coverage()) {
		t.Fatal("CRLF coverage diverges from the LF original")
	}
}
