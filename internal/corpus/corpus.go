// Package corpus is the persistent findings store behind long-running
// campaigns: every confirmed race, deadlock and atomicity violation is
// recorded under a canonical signature, so later campaigns can tell a
// brand-new finding from the hundredth sighting of a known one, replay the
// stored witnesses as a regression suite, and reallocate trial budget
// toward targets that are still producing new signatures.
//
// The on-disk layout mirrors internal/flightrec's idioms: a versioned
// manifest (MANIFEST.json) plus newline-delimited JSON record files
// (findings.jsonl, coverage.jsonl). Saves are atomic (write-temp + rename),
// and loading tolerates a truncated final line — the footprint of a crash
// mid-write — by skipping the partial record instead of failing the whole
// load. Witness flight recordings live under <dir>/witnesses/.
//
// All Store methods are safe for concurrent use; the campaign pipelines
// additionally call them from their single merge goroutine in deterministic
// (target, trial) order, which is what makes dedup verdicts bit-identical
// at any worker count.
package corpus

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"racefuzzer/internal/obs"
)

// FormatVersion is the corpus directory format version. Loading a corpus
// written by a newer version fails gracefully, like trace.CheckVersion.
const FormatVersion = 1

// Signature is the canonical identity of a finding: the kind of program
// location the pipeline targets ("race" = statement pair, "deadlock" = lock
// cycle's acquisition statements, "atomicity" = block boundaries), the
// sorted pair of statement locations, and the confirmed outcome kind. Two
// sightings with equal signatures are the same finding, whatever campaign,
// seed or worker count produced them — the DR.FIX-style dedup key.
type Signature struct {
	// Kind is the location kind: "race", "deadlock" or "atomicity".
	Kind string `json:"kind"`
	// LocA and LocB are the sorted (LocA <= LocB) statement labels of the
	// target — file:line pairs for races, acquisition statements for
	// deadlocks, block boundaries for atomicity targets.
	LocA string `json:"locA"`
	LocB string `json:"locB"`
	// Outcome is the confirmed outcome kind: "race", "deadlock" or
	// "violation".
	Outcome string `json:"outcome"`
}

// MakeSignature normalizes the location pair (sorted, so the signature is
// order-independent like event.MakeStmtPair).
func MakeSignature(kind, locA, locB, outcome string) Signature {
	if locB < locA {
		locA, locB = locB, locA
	}
	return Signature{Kind: kind, LocA: locA, LocB: locB, Outcome: outcome}
}

// Canon renders the signature as its canonical key string.
func (s Signature) Canon() string {
	return strings.Join([]string{s.Kind, s.LocA, s.LocB, s.Outcome}, "|")
}

func (s Signature) String() string { return s.Canon() }

// Finding is one deduplicated corpus entry: the signature plus everything
// needed to re-confirm it later — the campaign configuration that produced
// it (so regress can re-derive the phase-1 target list), the witness seed
// that replays the first confirming run, and the archived witness trace.
type Finding struct {
	Sig Signature `json:"sig"`
	// Bench is the registry benchmark (campaign label) the finding was
	// confirmed on.
	Bench string `json:"bench"`
	// Pair is the rendered target — statement pair, lock pair or atomic
	// block — exactly as the phase-1 report prints it, used to re-locate
	// the target among a regress run's re-derived warnings.
	Pair string `json:"pair"`
	// TargetIndex is the target's index in the discovering campaign's
	// phase-1 report.
	TargetIndex int `json:"targetIndex"`
	// FirstSeenSeed is the base seed of the campaign that first produced
	// the finding; LastSeenSeed is the most recent one. Phase1Trials and
	// MaxSteps complete the configuration regress needs to re-derive the
	// same target list.
	FirstSeenSeed int64 `json:"firstSeenSeed"`
	LastSeenSeed  int64 `json:"lastSeenSeed"`
	Phase1Trials  int   `json:"phase1Trials"`
	MaxSteps      int   `json:"maxSteps,omitempty"`
	// WitnessSeed replays the first confirming trial exactly (the paper's
	// lightweight replay); WitnessTrial is that trial's 0-based index.
	WitnessSeed  int64 `json:"witnessSeed"`
	WitnessTrial int   `json:"witnessTrial"`
	// WitnessTrace is the archived flight recording of the confirming run
	// ("" when capture was disabled), relative to the corpus directory when
	// stored inside it.
	WitnessTrace string `json:"witnessTrace,omitempty"`
	// Hits counts confirmed sightings across all campaigns (one per
	// campaign that re-confirmed the signature, not one per trial).
	Hits int64 `json:"hits"`
	// Exceptions lists distinct model-exception kinds observed on
	// confirming runs.
	Exceptions []string `json:"exceptions,omitempty"`
}

// manifest is the versioned MANIFEST.json schema. Provenance records the
// tool build and configuration of the campaign that last saved the corpus
// (nil in corpora written before the field existed — loaders tolerate its
// absence).
type manifest struct {
	V          int             `json:"v"`
	Findings   int             `json:"findings"`
	Coverage   int             `json:"coverage"`
	Provenance *obs.Provenance `json:"provenance,omitempty"`
}

const (
	manifestFile = "MANIFEST.json"
	findingsFile = "findings.jsonl"
	coverageFile = "coverage.jsonl"
	// WitnessSubdir is where campaign witness recordings are archived
	// inside a corpus directory.
	WitnessSubdir = "witnesses"
)

// Store is the in-memory working set of one corpus directory. Open loads
// it, Report/Observe mutate it, Save persists it atomically.
type Store struct {
	mu  sync.Mutex
	dir string

	byCanon map[string]*Finding
	order   []string // canonical keys in first-report order

	cov *Coverage

	// newSigs counts signatures first reported through this Store instance
	// (as opposed to loaded from disk) — the campaign-level "new findings"
	// number.
	newSigs   int64
	knownSigs int64

	// truncated reports that loading skipped a partial trailing record
	// (crash mid-write); callers may surface it as a warning.
	truncated bool

	// prov is the provenance stamped into MANIFEST.json on the next Save
	// (loaded from the manifest when opening an existing corpus, overwritten
	// by SetProvenance when a campaign adopts the store).
	prov *obs.Provenance
}

// Open loads the corpus at dir, creating an empty store when the directory
// or its files do not exist yet.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, byCanon: make(map[string]*Finding), cov: NewCoverage()}
	mpath := filepath.Join(dir, manifestFile)
	mb, err := os.ReadFile(mpath)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("corpus: open: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(mb, &m); err != nil {
		return nil, fmt.Errorf("corpus: open: %s: %w", manifestFile, err)
	}
	if m.V > FormatVersion {
		return nil, fmt.Errorf("corpus: unsupported format version %d (this build reads <= %d)", m.V, FormatVersion)
	}
	s.prov = m.Provenance
	findings, trunc1, err := loadJSONL[Finding](filepath.Join(dir, findingsFile))
	if err != nil {
		return nil, err
	}
	for i := range findings {
		f := findings[i]
		k := f.Sig.Canon()
		if _, ok := s.byCanon[k]; ok {
			continue // duplicate line (e.g. partial save overlap): first wins
		}
		s.byCanon[k] = &f
		s.order = append(s.order, k)
	}
	cells, trunc2, err := loadJSONL[CoverageCell](filepath.Join(dir, coverageFile))
	if err != nil {
		return nil, err
	}
	s.cov.load(cells)
	s.truncated = trunc1 || trunc2
	return s, nil
}

// loadJSONL reads a newline-delimited JSON record file. A missing file is
// an empty load. A record that fails to parse mid-file is an error; a
// partial *final* line — the footprint of a crash mid-write — is skipped,
// reported through the second return value.
func loadJSONL[T any](path string) ([]T, bool, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("corpus: load: %w", err)
	}
	defer f.Close()
	var out []T
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	var pendingErr error
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The bad line was not the final one after all.
			return nil, false, pendingErr
		}
		var rec T
		if err := json.Unmarshal(line, &rec); err != nil {
			// Defer the verdict: if no further line follows, this was a
			// truncated final record and is skipped instead of failing.
			pendingErr = fmt.Errorf("corpus: load: %s: line %d: %w", filepath.Base(path), lineno, err)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("corpus: load: %s: %w", filepath.Base(path), err)
	}
	return out, pendingErr != nil, nil
}

// Dir returns the corpus directory ("" for a purely in-memory store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Truncated reports whether loading skipped a partial trailing record.
func (s *Store) Truncated() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.truncated
}

// WitnessDir is the directory campaign witness recordings should be
// captured into so the corpus owns them ("" for an in-memory store, which
// has nowhere durable to put a trace).
func (s *Store) WitnessDir() string {
	if s == nil || s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, WitnessSubdir)
}

// NewStore returns an empty in-memory store (no backing directory); Save
// on it is a no-op. Tests and single-shot campaigns use it for dedup
// without persistence.
func NewStore() *Store {
	return &Store{byCanon: make(map[string]*Finding), cov: NewCoverage()}
}

// Report records one confirmed sighting of f.Sig and reports whether the
// signature is new to the corpus. For a known signature the stored entry's
// Hits, LastSeenSeed and Exceptions are updated; the original witness is
// kept (it is the regression baseline).
func (s *Store) Report(f Finding) (isNew bool) {
	if s == nil {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := f.Sig.Canon()
	if old, ok := s.byCanon[k]; ok {
		old.Hits++
		old.LastSeenSeed = f.FirstSeenSeed
		old.Exceptions = mergeSorted(old.Exceptions, f.Exceptions)
		s.knownSigs++
		return false
	}
	nf := f
	nf.Hits = 1
	nf.LastSeenSeed = f.FirstSeenSeed
	nf.Exceptions = mergeSorted(nil, f.Exceptions)
	s.byCanon[k] = &nf
	s.order = append(s.order, k)
	s.newSigs++
	return true
}

// AttachWitness records the archived witness trace path for sig's finding
// (a path under the corpus directory is stored relative to it, so the
// corpus stays relocatable).
func (s *Store) AttachWitness(sig Signature, path string) {
	if s == nil || path == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.byCanon[sig.Canon()]
	if !ok {
		return
	}
	if s.dir != "" {
		if rel, err := filepath.Rel(s.dir, path); err == nil && !strings.HasPrefix(rel, "..") {
			path = rel
		}
	}
	f.WitnessTrace = path
}

// WitnessPath resolves a finding's stored witness trace to an on-disk path
// ("" when the finding has no witness).
func (s *Store) WitnessPath(f Finding) string {
	if f.WitnessTrace == "" {
		return ""
	}
	if filepath.IsAbs(f.WitnessTrace) || s == nil || s.dir == "" {
		return f.WitnessTrace
	}
	return filepath.Join(s.dir, f.WitnessTrace)
}

// Known reports whether sig is already in the corpus.
func (s *Store) Known(sig Signature) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.byCanon[sig.Canon()]
	return ok
}

// Findings returns the corpus entries in first-report order (loaded entries
// first, then new ones).
func (s *Store) Findings() []Finding {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Finding, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, *s.byCanon[k])
	}
	return out
}

// Len returns the number of distinct signatures.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}

// SetProvenance records the campaign provenance to stamp into MANIFEST.json
// on the next Save. A nil store ignores it.
func (s *Store) SetProvenance(p obs.Provenance) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prov = &p
}

// Provenance returns the provenance of the campaign that last saved (or
// adopted) this corpus, nil when none was recorded.
func (s *Store) Provenance() *obs.Provenance {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.prov == nil {
		return nil
	}
	p := *s.prov
	return &p
}

// Counts returns this session's (new, known) sighting tallies — the
// dedup-rate numerator and denominator.
func (s *Store) Counts() (newSigs, knownSigs int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.newSigs, s.knownSigs
}

// BenchSignatures returns the number of distinct signatures recorded for
// one benchmark — the adaptive allocator's per-target discovery state.
func (s *Store) BenchSignatures(bench string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, f := range s.byCanon {
		if f.Bench == bench {
			n++
		}
	}
	return n
}

// Observe folds one confirmed-outcome coverage cell — (signature,
// resolution branch) — into the interleaving-coverage map and reports
// whether the cell is new. See Coverage.
func (s *Store) Observe(sig Signature, branch string) (isNew bool) {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cov.observe(sig, branch)
}

// Coverage returns a snapshot of the interleaving-coverage cells in
// first-observation order.
func (s *Store) Coverage() []CoverageCell {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cov.cells()
}

// CoverageLen returns the number of distinct coverage cells.
func (s *Store) CoverageLen() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cov.order)
}

// Save persists the store to its directory: findings.jsonl, coverage.jsonl
// and the versioned manifest, each written to a temp file and renamed, so a
// crash leaves either the old or the new state, never a torn one. Save on a
// directory-less store is a no-op.
func (s *Store) Save() error {
	if s == nil || s.dir == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("corpus: save: %w", err)
	}
	var fbuf bytes.Buffer
	enc := json.NewEncoder(&fbuf)
	for _, k := range s.order {
		if err := enc.Encode(s.byCanon[k]); err != nil {
			return fmt.Errorf("corpus: save: %w", err)
		}
	}
	if err := writeAtomic(filepath.Join(s.dir, findingsFile), fbuf.Bytes()); err != nil {
		return err
	}
	var cbuf bytes.Buffer
	enc = json.NewEncoder(&cbuf)
	for _, c := range s.cov.cells() {
		if err := enc.Encode(c); err != nil {
			return fmt.Errorf("corpus: save: %w", err)
		}
	}
	if err := writeAtomic(filepath.Join(s.dir, coverageFile), cbuf.Bytes()); err != nil {
		return err
	}
	mb, err := json.MarshalIndent(manifest{
		V: FormatVersion, Findings: len(s.order), Coverage: len(s.cov.order),
		Provenance: s.prov,
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: save: %w", err)
	}
	return writeAtomic(filepath.Join(s.dir, manifestFile), append(mb, '\n'))
}

// writeAtomic writes data to path via a temp file + rename.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("corpus: save: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("corpus: save: %w", err)
	}
	return nil
}

// mergeSorted folds add into base, deduplicating and keeping sorted order.
func mergeSorted(base, add []string) []string {
	if len(add) == 0 {
		return base
	}
	seen := make(map[string]bool, len(base)+len(add))
	for _, s := range base {
		seen[s] = true
	}
	for _, s := range add {
		seen[s] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
