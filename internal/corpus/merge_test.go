package corpus

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// mkFinding builds a distinct finding for tests.
func mkFinding(kind, locA, locB, bench string, seed int64) Finding {
	return Finding{
		Sig:           MakeSignature(kind, locA, locB, kind),
		Bench:         bench,
		Pair:          locA + " <-> " + locB,
		FirstSeenSeed: seed,
		LastSeenSeed:  seed,
		WitnessSeed:   seed,
	}
}

// TestIngestMatchesSequentialReports is the merge protocol's core claim:
// folding a batch store in is equivalent to replaying its Report/Observe
// calls sequentially — same findings, same hit counts, same session
// new/known tallies.
func TestIngestMatchesSequentialReports(t *testing.T) {
	// The sequential reference: every sighting reported directly.
	seq := NewStore()
	sightings := []Finding{
		mkFinding("race", "a.go:1", "a.go:2", "alpha", 10),
		mkFinding("race", "a.go:1", "a.go:2", "alpha", 11),
		mkFinding("race", "b.go:7", "b.go:9", "alpha", 12),
		mkFinding("race", "a.go:1", "a.go:2", "alpha", 13),
	}
	for _, f := range sightings {
		seq.Report(f)
		seq.Observe(f.Sig, "candidate-first")
	}

	// The batched path: the same sightings folded into a worker-local store,
	// then merged into a fresh coordinator store.
	batch := NewStore()
	for _, f := range sightings {
		batch.Report(f)
		batch.Observe(f.Sig, "candidate-first")
	}
	coord := NewStore()
	st := coord.Merge(batch)

	if !reflect.DeepEqual(coord.Findings(), seq.Findings()) {
		t.Fatalf("merged findings differ from sequential:\n%v\nvs\n%v", coord.Findings(), seq.Findings())
	}
	if !reflect.DeepEqual(coord.Coverage(), seq.Coverage()) {
		t.Fatalf("merged coverage differs from sequential:\n%v\nvs\n%v", coord.Coverage(), seq.Coverage())
	}
	wantNew, wantKnown := seq.Counts()
	gotNew, gotKnown := coord.Counts()
	if gotNew != wantNew || gotKnown != wantKnown {
		t.Fatalf("session counters: got (%d,%d), want (%d,%d)", gotNew, gotKnown, wantNew, wantKnown)
	}
	if st.NewSignatures != 2 || st.KnownSightings != 2 {
		t.Fatalf("merge stats: %+v, want 2 new / 2 known", st)
	}
	if st.NewCells != 2 || st.KnownCellHits != 2 {
		t.Fatalf("cell stats: %+v, want 2 new cells / 2 known hits", st)
	}
}

// TestIngestIntoPopulatedStore covers the dedup side: a batch whose
// signature the coordinator already holds must only grow hit counts.
func TestIngestIntoPopulatedStore(t *testing.T) {
	coord := NewStore()
	coord.Report(mkFinding("race", "x.go:1", "x.go:2", "alpha", 1))

	batch := NewStore()
	f := mkFinding("race", "x.go:1", "x.go:2", "beta", 99)
	f.Exceptions = []string{"NullPointerException"}
	batch.Report(f)
	batch.Report(f) // second sighting in the same batch

	st := coord.Merge(batch)
	if st.NewSignatures != 0 || st.KnownSightings != 2 {
		t.Fatalf("merge stats: %+v, want 0 new / 2 known", st)
	}
	got := coord.Findings()
	if len(got) != 1 {
		t.Fatalf("expected 1 finding, got %d", len(got))
	}
	if got[0].Hits != 3 {
		t.Fatalf("hits = %d, want 3", got[0].Hits)
	}
	if got[0].Bench != "alpha" {
		t.Fatalf("first reporter must win attribution, got %q", got[0].Bench)
	}
	if got[0].LastSeenSeed != 99 {
		t.Fatalf("LastSeenSeed = %d, want 99", got[0].LastSeenSeed)
	}
	if len(got[0].Exceptions) != 1 || got[0].Exceptions[0] != "NullPointerException" {
		t.Fatalf("exceptions not unioned: %v", got[0].Exceptions)
	}
}

// TestConcurrentMerge exercises many goroutines merging disjoint batch
// stores (with overlapping signatures) into one coordinator store under
// -race. The final state must be batch-order independent: every signature
// present, hits summed across all batches.
func TestConcurrentMerge(t *testing.T) {
	const batches = 8
	const perBatch = 5
	coord := NewStore()
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			batch := NewStore()
			for i := 0; i < perBatch; i++ {
				// "shared" collides across every batch; the rest are unique.
				batch.Report(mkFinding("race", "shared.go:1", "shared.go:2", "alpha", int64(b)))
				f := mkFinding("race", fmt.Sprintf("u%d.go:%d", b, i), fmt.Sprintf("u%d.go:%d", b, i+1), "alpha", int64(b))
				batch.Report(f)
				batch.Observe(f.Sig, "candidate-first")
			}
			coord.Merge(batch)
		}(b)
	}
	wg.Wait()

	if got, want := coord.Len(), 1+batches*perBatch; got != want {
		t.Fatalf("signatures = %d, want %d", got, want)
	}
	var sharedHits int64
	for _, f := range coord.Findings() {
		if f.Sig.LocA == "shared.go:1" {
			sharedHits = f.Hits
		}
	}
	if sharedHits != batches*perBatch {
		t.Fatalf("shared hits = %d, want %d", sharedHits, batches*perBatch)
	}
	n, k := coord.Counts()
	if n != int64(1+batches*perBatch) || n+k != int64(2*batches*perBatch) {
		t.Fatalf("counts = (%d,%d), want %d new and %d total sightings", n, k, 1+batches*perBatch, 2*batches*perBatch)
	}
	if got, want := coord.CoverageLen(), batches*perBatch; got != want {
		t.Fatalf("coverage cells = %d, want %d", got, want)
	}
}
