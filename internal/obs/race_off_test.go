//go:build !race

package obs

const raceDetectorEnabled = false
