package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"racefuzzer/internal/event"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has value")
	}
	var g *Gauge
	g.Set(3.5)
	if g.Value() != 0 {
		t.Fatal("nil gauge has value")
	}
	real := &Counter{}
	real.Inc()
	real.Add(2)
	if real.Value() != 3 {
		t.Fatalf("counter = %d", real.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []float64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	// Buckets: <=10 gets {1,10}; <=100 gets {11,100}; overflow gets {101,5000}.
	want := []int64{2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Min != 1 || s.Max != 5000 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Mean() != (1+10+11+100+101+5000)/6.0 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if !strings.Contains(s.String(), "n=6") {
		t.Fatalf("render: %q", s.String())
	}

	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Snapshot().Count != 0 {
		t.Fatal("nil histogram observed")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 100)
	b := NewHistogram(10, 100)
	a.Observe(5)
	b.Observe(50)
	b.Observe(500)
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 3 || s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("merged = %+v", s)
	}
	if s.Min != 5 || s.Max != 500 {
		t.Fatalf("merged min/max = %v/%v", s.Min, s.Max)
	}
	// Merging into an empty histogram adopts min/max.
	c := NewHistogram(10, 100)
	c.Merge(b)
	if cs := c.Snapshot(); cs.Min != 50 || cs.Max != 500 {
		t.Fatalf("empty-merge min/max = %v/%v", cs.Min, cs.Max)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Inc()
	r.Counter("runs").Inc() // same instance
	r.Gauge("rate").Set(0.5)
	r.Histogram("steps", 10, 100).Observe(42)
	s := r.Snapshot()
	if len(s.Counters) != 1 || s.Counters[0].Name != "runs" || s.Counters[0].Value != 2 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Gauges) != 1 || s.Gauges[0].Value != 0.5 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Hist.Count != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}

	// The nil chain: nil registry -> nil metrics -> no-op methods.
	var nilR *Registry
	nilR.Counter("x").Inc()
	nilR.Gauge("y").Set(1)
	nilR.Histogram("z", 1).Observe(1)
	if snap := nilR.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

func TestSnapshotJSONAndTable(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(7)
	r.Gauge("b.rate").Set(1.25)
	r.Histogram("c.hist", 5).Observe(3)
	s := r.Snapshot()

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[0].Value != 7 || back.Gauges[0].Value != 1.25 || back.Histograms[0].Hist.Count != 1 {
		t.Fatalf("roundtrip = %+v", back)
	}

	tab := s.Table("metrics").Render()
	for _, want := range []string{"a.count", "7", "b.rate", "1.25", "c.hist"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}

// memEvent is a representative hot-path event.
var memEvent = event.Event{Kind: event.KindMem, Thread: 1, Stmt: 2, Loc: 3, Access: event.Write}

// sinkCount prevents the compiler from eliminating the benchmark loops.
var sinkCount int64

// BenchmarkNilRunMetricsEvent measures the observability off switch: the
// per-event cost of calling a probe on a nil *RunMetrics. This is the cost
// the scheduler pays when no metrics are attached (beyond its own nil check
// that skips attaching the observer at all).
func BenchmarkNilRunMetricsEvent(b *testing.B) {
	var m *RunMetrics
	for i := 0; i < b.N; i++ {
		m.OnEvent(memEvent)
		sinkCount++
	}
}

// BenchmarkLiveRunMetricsEvent is the on-switch per-event cost, for the
// overhead table in README.
func BenchmarkLiveRunMetricsEvent(b *testing.B) {
	m := NewRunMetrics()
	for i := 0; i < b.N; i++ {
		m.OnEvent(memEvent)
		sinkCount++
	}
}

// TestNoopOverhead asserts the contract the scheduler relies on: the no-op
// (nil-receiver) metrics path costs no more than a few nanoseconds per
// event relative to an empty loop, so leaving probes compiled into the hot
// path is free when observability is off.
func TestNoopOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceDetectorEnabled {
		t.Skip("race detector instruments calls; ns-level timing is meaningless")
	}
	baseline := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sinkCount++
		}
	})
	nilPath := testing.Benchmark(func(b *testing.B) {
		var m *RunMetrics
		for i := 0; i < b.N; i++ {
			m.OnEvent(memEvent)
			m.Postpone()
			sinkCount++
		}
	})
	delta := float64(nilPath.NsPerOp()) - float64(baseline.NsPerOp())
	// "A few ns/event": the two probe calls above are nil checks that
	// should each cost well under 5ns even on slow CI hardware.
	if delta > 10 {
		t.Fatalf("no-op metrics path adds %.1f ns/event (baseline %d ns, nil-path %d ns)",
			delta, baseline.NsPerOp(), nilPath.NsPerOp())
	}
}
