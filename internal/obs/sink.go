package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// RunRecord is one structured log record: a single execution of the
// pipeline (one phase-1 observation or one phase-2 directed run). It is the
// JSONL schema written by JSONLSink and the unit CampaignMetrics aggregates.
type RunRecord struct {
	// Seq is the record's monotonic emission index (0-based), stamped by
	// JSONLSink under its lock as records arrive. The campaign pipelines
	// emit in deterministic (phase, pairIndex, trial) order even under a
	// parallel executor — the merge goroutine is single — so Seq is
	// deterministic too; for sinks fed by concurrent emitters it makes the
	// log's total order explicit and the file sortable after the fact.
	Seq int64 `json:"seq"`
	// Label names the campaign (usually the benchmark name).
	Label string `json:"label,omitempty"`
	// Phase is 1 (detector observation) or 2 (directed run).
	Phase int `json:"phase"`
	// Kind names the directed pipeline ("race", "deadlock", "atomicity");
	// empty for plain phase-1 observations.
	Kind string `json:"kind,omitempty"`
	// Pair is the rendered target (statement pair, lock pair, atomic block).
	Pair string `json:"pair,omitempty"`
	// PairIndex is the target's index in the phase-1 report (-1 for phase 1).
	PairIndex int `json:"pairIndex"`
	// Trial is the 0-based trial index within the target's campaign.
	Trial int `json:"trial"`
	// Round is the adaptive campaign's 1-based allocation round (0 outside
	// budgeted campaigns) — the key the offline analytics engine groups
	// budget-audit and dedup-trend tables by.
	Round int `json:"round,omitempty"`
	// Seed replays this exact execution.
	Seed int64 `json:"seed"`
	// RaceCreated reports whether the directed goal was reached (real race /
	// real deadlock / real violation).
	RaceCreated bool `json:"raceCreated"`
	// Races is the number of goal events created in this run.
	Races int `json:"races,omitempty"`
	// StepsToRace is the scheduler step of the first created race (-1 when
	// none).
	StepsToRace int `json:"stepsToRace"`
	// Exceptions lists the distinct model-exception kinds thrown.
	Exceptions []string `json:"exceptions,omitempty"`
	// Deadlock reports whether the run ended in a real deadlock.
	Deadlock bool `json:"deadlock,omitempty"`
	// Aborted reports whether the run hit its step bound.
	Aborted bool `json:"aborted,omitempty"`
	// Steps is the run's scheduler step count.
	Steps int `json:"steps"`
	// DurationNs is the run's wall-clock duration in nanoseconds. It is
	// opt-in (core.Options.Timing, the -timing CLI flag) and zero by
	// default, so the JSONL stream stays bit-identical across repeat runs —
	// the determinism invariant offline analytics and CI golden tests rely
	// on. With timing on, analytics can compute real per-run throughput.
	DurationNs int64 `json:"durationNs,omitempty"`
	// NewCells is the number of interleaving-coverage cells this run added
	// to the campaign corpus (0 without a corpus or when every observed
	// cell was already known). See corpus.Store.Observe.
	NewCells int `json:"newCells,omitempty"`
	// Trace is the path of the flight recording auto-captured for this run
	// (set on the first confirming run of a target when capture is enabled).
	Trace string `json:"trace,omitempty"`
	// Perf is the path of the Perfetto timeline exported for this run (set
	// on the first confirming run of a target when Options.PerfDir is set).
	Perf string `json:"perf,omitempty"`
	// Finding classifies a target's first confirming run against the race
	// corpus: "new" (signature never seen before) or "known" (deduplicated
	// re-sighting). Empty on non-confirming runs and corpus-less campaigns.
	Finding string `json:"finding,omitempty"`

	// Stats carries the full scheduler telemetry when metrics were attached.
	// It rides along for in-process consumers (CampaignMetrics, Progress)
	// and is excluded from the JSONL schema, which stays one flat record.
	Stats *RunStats `json:"-"`
}

// Sink consumes run records. The campaign pipelines emit from a single
// merge goroutine in deterministic (phase, pairIndex, trial) order even when
// trials run on a parallel executor, but implementations must tolerate
// concurrent Emit calls anyway (callers may fan several campaigns into one
// sink); the provided sinks all lock internally. Emit must not block on the
// schedule (sinks run between executions, never inside one).
type Sink interface {
	Emit(rec RunRecord)
}

// MultiSink fans records out to several sinks.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(rec RunRecord) {
	for _, s := range m {
		if s != nil {
			s.Emit(rec)
		}
	}
}

// Emit sends rec to s if s is non-nil — the nil-safe call instrumentation
// sites use.
func Emit(s Sink, rec RunRecord) {
	if s != nil {
		s.Emit(rec)
	}
}

// JSONLSink writes one JSON object per record, newline-delimited, through a
// buffered writer. Close (or Flush) must be called to drain the buffer.
// The first write error is retained and reported by Err; later emits are
// dropped.
type JSONLSink struct {
	mu        sync.Mutex
	w         *bufio.Writer
	c         io.Closer
	enc       *json.Encoder
	err       error
	seq       int64
	flushEach int64
}

// NewJSONLSink wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// AutoFlush makes the sink flush its buffer after every n records (n <= 0
// disables, the default). Long campaigns set a small n so `tail -f` of the
// run log — and any file-backed live consumer — sees records as they land
// instead of only at Close. Returns the sink for call chaining.
func (s *JSONLSink) AutoFlush(n int) *JSONLSink {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushEach = int64(n)
	return s
}

// Emit implements Sink. It is safe for concurrent use: each record is
// stamped with the sink's next Seq and encoded whole under the lock, so
// parallel emitters can never interleave bytes, and the stream's arrival
// order stays reconstructible from the Seq column.
func (s *JSONLSink) Emit(rec RunRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	rec.Seq = s.seq
	s.seq++
	s.err = s.enc.Encode(rec)
	if s.err == nil && s.flushEach > 0 && s.seq%s.flushEach == 0 {
		s.err = s.w.Flush()
	}
}

// Flush drains the buffer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes and closes the underlying writer (when closable).
func (s *JSONLSink) Close() error {
	ferr := s.Flush()
	s.mu.Lock()
	c := s.c
	s.c = nil
	s.mu.Unlock()
	if c != nil {
		if cerr := c.Close(); ferr == nil {
			return cerr
		}
	}
	return ferr
}
