package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestProvenanceHeader(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	p := CollectProvenance("racefuzzer", "demo", map[string]string{
		"seed": "42", "budget": "100",
	})
	if p.Tool != "racefuzzer" || p.Label != "demo" {
		t.Fatalf("provenance = %+v", p)
	}
	// Sorted flag rendering keeps the header byte-stable across runs.
	if p.Config != "budget=100 seed=42" {
		t.Fatalf("config = %q", p.Config)
	}
	s.Header(p)
	s.Emit(RunRecord{Label: "demo", Phase: 1})
	// A header after the first record must be silently refused: analytics
	// loaders only look for provenance on line one.
	s.Header(p)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines:\n%s", len(lines), buf.String())
	}
	got, ok := ParseProvenanceLine([]byte(lines[0]))
	if !ok || got.Tool != "racefuzzer" || got.Config != p.Config {
		t.Fatalf("parsed = %+v ok=%v", got, ok)
	}
	// A run record is not a provenance line.
	if _, ok := ParseProvenanceLine([]byte(lines[1])); ok {
		t.Fatal("run record parsed as provenance")
	}
	// Garbage is tolerated (loaders skip to records).
	if _, ok := ParseProvenanceLine([]byte("not json")); ok {
		t.Fatal("garbage parsed as provenance")
	}
}
