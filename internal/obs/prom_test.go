package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestPromNameSanitization(t *testing.T) {
	cases := []struct {
		prefix, in, want string
	}{
		{"racefuzzer", "runs.total", "racefuzzer_runs_total"},
		{"racefuzzer", "findings.dedup_rate", "racefuzzer_findings_dedup_rate"},
		// ':' is reserved for recording rules and must never survive.
		{"", "sched:steps", "sched_steps"},
		// Statement-like names with '/' and ':' collapse to single underscores.
		{"rf", "figure2/main.go:31", "rf_figure2_main_go_31"},
		{"", "events.READ", "events_READ"},
		// Runs of illegal characters collapse; trailing junk is trimmed.
		{"", "a..b--c..", "a_b_c"},
		// Leading digit gains a guard.
		{"", "2phase", "_2phase"},
		// Degenerate input still yields a legal name.
		{"", "...", "_"},
	}
	for _, c := range cases {
		if got := PromName(c.prefix, c.in); got != c.want {
			t.Errorf("PromName(%q, %q) = %q, want %q", c.prefix, c.in, got, c.want)
		}
	}
}

func TestPromCounterNameFoldsTotal(t *testing.T) {
	if got := promCounterName("racefuzzer", "trials.total"); got != "racefuzzer_trials_total" {
		t.Errorf("existing .total doubled: %q", got)
	}
	if got := promCounterName("racefuzzer", "findings.new"); got != "racefuzzer_findings_new_total" {
		t.Errorf("missing _total suffix: %q", got)
	}
}

func TestPromEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`with "quotes"`, `with \"quotes\"`},
		{`back\slash`, `back\\slash`},
		{"line\nbreak", `line\nbreak`},
		// Statement pairs pass through untouched — '/' and ':' are legal in
		// label values.
		{`(figure2/main.go:31, figure2/main.go:42)`, `(figure2/main.go:31, figure2/main.go:42)`},
	}
	for _, c := range cases {
		if got := PromEscapeLabel(c.in); got != c.want {
			t.Errorf("PromEscapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPromValueSpellings(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{1, "1"}, {0.5, "0.5"}, {math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
	}
	for _, c := range cases {
		if got := promValue(c.in); got != c.want {
			t.Errorf("promValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if got := promValue(math.NaN()); got != "NaN" {
		t.Errorf("promValue(NaN) = %q", got)
	}
}

// TestWritePromGolden locks the full exposition byte layout: counters with
// the _total convention, gauges, a histogram with cumulative buckets and
// quantile companions, and a labeled family with values needing escaping.
func TestWritePromGolden(t *testing.T) {
	var b strings.Builder

	reg := NewRegistry()
	reg.Counter("runs.total").Add(7)
	reg.Counter("findings.new").Add(2)
	reg.Gauge("findings.dedup_rate").Set(0.25)
	h := reg.Histogram("steps_to_race", 10, 100, 1000)
	for _, v := range []float64{3, 14, 250, 251, 252, 9000} {
		h.Observe(v)
	}
	if err := WriteProm(&b, "racefuzzer", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}

	samples := []PromSample{
		{Labels: []PromLabel{{Name: "bench", Value: "figure2"}, {Name: "target", Value: `(figure2/main.go:31, figure2/main.go:42)`}}, Value: 40},
		{Labels: []PromLabel{{Name: "bench", Value: `evil"bench`}, {Name: "target", Value: "line\nbreak"}}, Value: 2},
	}
	SortPromSamples(samples)
	if err := WritePromFamily(&b, "racefuzzer_target_runs_total",
		"Phase-2 trials per directed target.", "counter", samples...); err != nil {
		t.Fatal(err)
	}

	got := b.String()
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePromFormatInvariants checks structural properties a Prometheus
// scraper relies on, independent of the exact byte layout.
func TestWritePromFormatInvariants(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs.total").Add(3)
	reg.Gauge("campaign.round").Set(2)
	h := reg.Histogram("enabled", 2, 4)
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var b strings.Builder
	if err := WriteProm(&b, "racefuzzer", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	// Every non-comment line is `name{labels} value` with a legal name.
	lineRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? [^ ]+$`)
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !lineRe.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}

	// Histogram buckets are cumulative and capped by the +Inf bucket.
	for _, want := range []string{
		`racefuzzer_enabled_bucket{le="2"} 1`,
		`racefuzzer_enabled_bucket{le="4"} 2`,
		`racefuzzer_enabled_bucket{le="+Inf"} 3`,
		`racefuzzer_enabled_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	// Empty histogram: quantiles are 0, not NaN.
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram q0.5 = %v, want 0", got)
	}
	for v := 1.0; v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0); got != s.Min {
		t.Errorf("q0 = %v, want Min %v", got, s.Min)
	}
	if got := s.Quantile(1); got != s.Max {
		t.Errorf("q1 = %v, want Max %v", got, s.Max)
	}
	// Half the mass is in the overflow bucket (31..100); the median must be
	// in it, and never exceed the observed Max.
	if got := s.Quantile(0.9); got > s.Max {
		t.Errorf("q0.9 = %v exceeds Max %v", got, s.Max)
	}
	// q0.05 lands in the first bucket (values 1..10): interpolation keeps it
	// within the bucket's range.
	if got := s.Quantile(0.05); got < s.Min || got > 10 {
		t.Errorf("q0.05 = %v, want within [%v, 10]", got, s.Min)
	}
	// Quantiles are monotonic in q.
	prev := math.Inf(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v := s.Quantile(q)
		if v < prev {
			t.Errorf("quantiles not monotonic: q%v = %v < %v", q, v, prev)
		}
		prev = v
	}
}
