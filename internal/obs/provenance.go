package obs

import (
	"encoding/json"
	"runtime/debug"
	"sort"
	"strings"
)

// Provenance identifies the producer of a campaign artifact: which tool at
// which build wrote a JSONL run log or a corpus directory, under what
// configuration and campaign label. It is stamped as the first line of JSONL
// run logs (see JSONLSink.Header) and into the corpus MANIFEST.json, and the
// offline analytics engine surfaces it in report headers so a pasted table
// stays attributable months later.
//
// Provenance deliberately carries no wall-clock timestamp: the same build
// running the same configuration must produce byte-identical artifacts (the
// determinism contract CI's golden report test enforces), and a timestamp
// would break that. Label is the campaign's "start label" instead.
type Provenance struct {
	// Tool is the producing command ("racefuzzer", "benchtable", ...).
	Tool string `json:"tool"`
	// Version is the module version from build info ("(devel)" for source
	// builds), Commit the VCS revision stamped at build time ("" when the
	// build carried none).
	Version string `json:"version,omitempty"`
	Commit  string `json:"commit,omitempty"`
	// Go is the toolchain that built the producer.
	Go string `json:"go,omitempty"`
	// Label names the campaign (usually the benchmark name or "campaign").
	Label string `json:"label,omitempty"`
	// Config renders the non-default configuration as "flag=value" pairs in
	// sorted order — enough to re-run the campaign by hand.
	Config string `json:"config,omitempty"`
}

// CollectProvenance assembles a Provenance for the named tool from the
// binary's build info. flags maps explicitly-set flag names to their values;
// it is rendered sorted, so the result is deterministic for a given
// configuration.
func CollectProvenance(tool, label string, flags map[string]string) Provenance {
	p := Provenance{Tool: tool, Label: label, Config: renderConfig(flags)}
	if bi, ok := debug.ReadBuildInfo(); ok {
		p.Version = bi.Main.Version
		p.Go = bi.GoVersion
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				p.Commit = s.Value
			}
		}
	}
	return p
}

// String renders the provenance on one line for report headers.
func (p Provenance) String() string {
	var b strings.Builder
	b.WriteString(p.Tool)
	if p.Version != "" {
		b.WriteByte(' ')
		b.WriteString(p.Version)
	}
	if p.Commit != "" {
		c := p.Commit
		if len(c) > 12 {
			c = c[:12]
		}
		b.WriteString(" @" + c)
	}
	if p.Go != "" {
		b.WriteString(" (" + p.Go + ")")
	}
	if p.Label != "" {
		b.WriteString(" label=" + p.Label)
	}
	if p.Config != "" {
		b.WriteString(" [" + p.Config + "]")
	}
	return b.String()
}

// renderConfig renders flag=value pairs space-separated in sorted name order.
func renderConfig(flags map[string]string) string {
	if len(flags) == 0 {
		return ""
	}
	names := make([]string, 0, len(flags))
	for n := range flags {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(flags[n])
	}
	return b.String()
}

// provenanceLine is the JSONL header wire form: a line whose single
// "provenance" key distinguishes it from run records, so loaders written
// before the header existed still parse the stream (they see a RunRecord
// with every field zero and can skip or ignore it), and loaders that know
// the header tolerate logs without one.
type provenanceLine struct {
	Provenance *Provenance `json:"provenance"`
}

// ParseProvenanceLine reports whether a JSONL line is a provenance header,
// returning the decoded header when it is. Loaders call it on the first
// line of a run log; any non-header line (including legacy logs that start
// directly with a run record) returns (nil, false).
func ParseProvenanceLine(line []byte) (*Provenance, bool) {
	var pl provenanceLine
	if err := json.Unmarshal(line, &pl); err != nil || pl.Provenance == nil {
		return nil, false
	}
	return pl.Provenance, true
}

// Header writes the provenance header line. It must be called before the
// first Emit; a header after any record would corrupt Seq-sorted loading,
// so late calls are dropped. Returns the sink for call chaining.
func (s *JSONLSink) Header(p Provenance) *JSONLSink {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil || s.seq > 0 {
		return s
	}
	s.err = s.enc.Encode(provenanceLine{Provenance: &p})
	return s
}
