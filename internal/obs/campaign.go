package obs

import (
	"sync"
	"time"

	"racefuzzer/internal/event"
)

// stepsToRaceBounds buckets the scheduler step at which a directed run
// created its first race — the "how deep into the execution does the pair
// meet" distribution behind the paper's probability claims.
var stepsToRaceBounds = []float64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000}

// CampaignMetrics aggregates run records (and their attached RunStats) over
// a whole campaign: phase-1 observations plus every phase-2 directed run
// across all targets. It implements Sink, so it can be used alone or fanned
// together with a JSONL log and a progress reporter.
//
// All methods are nil-safe; a nil *CampaignMetrics records nothing.
type CampaignMetrics struct {
	mu sync.Mutex

	runs, phase1Runs          int64
	raceRuns, exceptionRuns   int64
	deadlockRuns, abortedRuns int64

	steps, switches, decisions         int64
	postpones, resumes, livelockBreaks int64
	events                             [event.KindCount]int64
	wall                               time.Duration

	// firstRaceRun is the campaign-wide run index of the first race-creating
	// run (-1 until one happens): "how many runs did confirmation cost".
	firstRaceRun int64
	// traceCaptures counts runs for which a flight recording was archived.
	traceCaptures int64
	// findingsNew and findingsKnown tally corpus dedup verdicts on
	// confirming runs (zero for corpus-less campaigns).
	findingsNew, findingsKnown int64

	stepsToRace *Histogram
	enabled     *Histogram
}

// NewStepsToRaceHistogram returns a histogram with the standard
// steps-to-race buckets, so per-pair and campaign-level distributions are
// directly comparable.
func NewStepsToRaceHistogram() *Histogram { return NewHistogram(stepsToRaceBounds...) }

// NewCampaignMetrics returns an empty aggregator.
func NewCampaignMetrics() *CampaignMetrics {
	return &CampaignMetrics{
		firstRaceRun: -1,
		stepsToRace:  NewHistogram(stepsToRaceBounds...),
		enabled:      NewHistogram(enabledBounds...),
	}
}

// Emit implements Sink: it aggregates one run record.
func (c *CampaignMetrics) Emit(rec RunRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	if rec.Phase == 1 {
		c.phase1Runs++
	}
	c.steps += int64(rec.Steps)
	// Wall time prefers the in-process RunStats (always populated when
	// observing); decoded JSONL records carry it in DurationNs when the
	// campaign opted into -timing.
	if rec.Stats != nil {
		c.wall += rec.Stats.Wall
	} else {
		c.wall += time.Duration(rec.DurationNs)
	}
	if rec.RaceCreated {
		c.raceRuns++
		if c.firstRaceRun < 0 {
			c.firstRaceRun = c.runs - 1
		}
		if rec.StepsToRace >= 0 {
			c.stepsToRace.Observe(float64(rec.StepsToRace))
		}
	}
	if len(rec.Exceptions) > 0 {
		c.exceptionRuns++
	}
	if rec.Deadlock {
		c.deadlockRuns++
	}
	if rec.Aborted {
		c.abortedRuns++
	}
	if rec.Trace != "" {
		c.traceCaptures++
	}
	switch rec.Finding {
	case "new":
		c.findingsNew++
	case "known":
		c.findingsKnown++
	}
	if rs := rec.Stats; rs != nil {
		c.switches += int64(rs.Switches)
		c.decisions += int64(rs.Decisions)
		c.postpones += int64(rs.Postpones)
		c.resumes += int64(rs.Resumes)
		c.livelockBreaks += int64(rs.LivelockBreaks)
		for k, n := range rs.Events {
			c.events[k] += n
		}
		c.mergeEnabledLocked(rs.Enabled)
	}
}

// mergeEnabledLocked folds one run's enabled-count histogram into the
// campaign's. Both use enabledBounds, so counts add index-wise.
func (c *CampaignMetrics) mergeEnabledLocked(s HistogramSnapshot) {
	if s.Count == 0 {
		return
	}
	o := &Histogram{bounds: s.Bounds, counts: s.Counts, count: s.Count, sum: s.Sum, min: s.Min, max: s.Max}
	c.enabled.Merge(o)
}

// Runs returns the number of aggregated runs.
func (c *CampaignMetrics) Runs() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// FirstRaceRun returns the campaign-wide index of the first confirming run
// (-1 when no run confirmed its target).
func (c *CampaignMetrics) FirstRaceRun() int64 {
	if c == nil {
		return -1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.firstRaceRun
}

// TraceCaptures returns the number of archived flight recordings.
func (c *CampaignMetrics) TraceCaptures() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traceCaptures
}

// Snapshot captures the campaign's metrics under stable names.
func (c *CampaignMetrics) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.Counters = []NamedCounter{
		{Name: "runs.total", Value: c.runs},
		{Name: "trials.total", Value: c.runs - c.phase1Runs},
		{Name: "runs.phase1", Value: c.phase1Runs},
		{Name: "runs.race", Value: c.raceRuns},
		{Name: "runs.exception", Value: c.exceptionRuns},
		{Name: "runs.deadlock", Value: c.deadlockRuns},
		{Name: "runs.aborted", Value: c.abortedRuns},
		{Name: "sched.steps", Value: c.steps},
		{Name: "sched.switches", Value: c.switches},
		{Name: "policy.decisions", Value: c.decisions},
		{Name: "policy.postpones", Value: c.postpones},
		{Name: "policy.resumes", Value: c.resumes},
		{Name: "policy.livelock_breaks", Value: c.livelockBreaks},
		{Name: "traces.captured", Value: c.traceCaptures},
		{Name: "findings.new", Value: c.findingsNew},
		{Name: "findings.known", Value: c.findingsKnown},
	}
	for k := event.Kind(0); k < event.KindCount; k++ {
		s.Counters = append(s.Counters, NamedCounter{Name: "events." + k.String(), Value: c.events[k]})
	}
	s.Gauges = []NamedGauge{
		{Name: "race.first_run", Value: float64(c.firstRaceRun)},
		{Name: "wall.seconds", Value: c.wall.Seconds()},
	}
	if c.runs > 0 {
		s.Gauges = append(s.Gauges,
			NamedGauge{Name: "race.hit_rate", Value: float64(c.raceRuns) / float64(c.runs)})
	}
	// dedup_rate is emitted unconditionally (0 before any sighting) so live
	// scrapers see a stable metric set from the first scrape on.
	dedup := 0.0
	if sightings := c.findingsNew + c.findingsKnown; sightings > 0 {
		dedup = float64(c.findingsKnown) / float64(sightings)
	}
	s.Gauges = append(s.Gauges, NamedGauge{Name: "findings.dedup_rate", Value: dedup})
	s.Histograms = []NamedHistogram{
		{Name: "steps_to_race", Hist: c.stepsToRace.Snapshot()},
		{Name: "enabled_threads", Hist: c.enabled.Snapshot()},
	}
	s.sort()
	return s
}
