package obs

import (
	"sync"
	"testing"
)

// TestBroadcastAllSubscribersSeeEveryEventInOrder runs N concurrent
// subscribers against a concurrent publisher and checks each receives the
// full event stream in strictly increasing Seq order (run under -race in
// CI, which is the real assertion about the locking).
func TestBroadcastAllSubscribersSeeEveryEventInOrder(t *testing.T) {
	const subs, events = 8, 200
	b := NewBroadcast()

	var wg sync.WaitGroup
	received := make([][]int64, subs)
	for i := 0; i < subs; i++ {
		sub := b.Subscribe(2*events + 1) // roomy (2 events per Emit): nobody dropped
		wg.Add(1)
		go func(i int, sub *Subscriber) {
			defer wg.Done()
			for ev := range sub.Events() {
				received[i] = append(received[i], ev.Seq)
			}
		}(i, sub)
	}

	for n := 0; n < events; n++ {
		b.Emit(RunRecord{Phase: 2, Kind: "race", Trial: n, Finding: "new"})
	}
	b.Close()
	wg.Wait()

	// Emit publishes a "run" event plus a companion "finding" event.
	want := int64(2 * events)
	if got := b.Events(); got != want {
		t.Fatalf("published %d events, want %d", got, want)
	}
	if b.Dropped() != 0 {
		t.Fatalf("%d subscribers dropped with roomy buffers", b.Dropped())
	}
	for i, seqs := range received {
		if int64(len(seqs)) != want {
			t.Fatalf("subscriber %d received %d events, want %d", i, len(seqs), want)
		}
		for j := 1; j < len(seqs); j++ {
			if seqs[j] <= seqs[j-1] {
				t.Fatalf("subscriber %d: Seq not strictly increasing at %d: %d then %d",
					i, j, seqs[j-1], seqs[j])
			}
		}
	}
}

// TestBroadcastDropsStalledSubscriberWithoutBlocking publishes far past a
// 1-slot subscriber that never reads: the publisher must never block, the
// stalled subscriber must be evicted (channel closed, drop counted), and a
// healthy subscriber must keep receiving everything.
func TestBroadcastDropsStalledSubscriberWithoutBlocking(t *testing.T) {
	b := NewBroadcast()
	stalled := b.Subscribe(1)
	healthy := b.Subscribe(100)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			b.Publish(StreamEvent{Type: "run"})
		}
	}()
	<-done // a blocked publisher would hang the test here

	if b.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", b.Dropped())
	}
	if !stalled.Dropped() {
		t.Fatal("stalled subscriber not marked dropped")
	}
	// The stalled subscriber's channel is closed after its buffered backlog.
	n := 0
	for range stalled.Events() {
		n++
	}
	if n > 1 {
		t.Fatalf("stalled subscriber drained %d events from a 1-slot buffer", n)
	}

	got := 0
	b.Close()
	for range healthy.Events() {
		got++
	}
	if got != 50 {
		t.Fatalf("healthy subscriber received %d of 50 events", got)
	}
}

func TestBroadcastSubscribeAfterClose(t *testing.T) {
	b := NewBroadcast()
	b.Close()
	sub := b.Subscribe(4)
	if _, open := <-sub.Events(); open {
		t.Fatal("subscription on a closed broadcaster yielded a live channel")
	}
	// Publishing after close is a rejected no-op, not a panic.
	if seq := b.Publish(StreamEvent{Type: "run"}); seq != -1 {
		t.Fatalf("publish after close returned seq %d, want -1", seq)
	}
}

func TestNilBroadcastIsInert(t *testing.T) {
	var b *Broadcast
	b.Emit(RunRecord{})
	b.Publish(StreamEvent{})
	b.Close()
	if b.Subscribers() != 0 || b.Dropped() != 0 || b.Events() != 0 {
		t.Fatal("nil broadcaster reported non-zero state")
	}
	if sub := b.Subscribe(1); sub != nil {
		t.Fatal("nil broadcaster yielded a subscription")
	}
}
