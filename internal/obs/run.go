package obs

import (
	"time"

	"racefuzzer/internal/event"
)

// enabledBounds buckets the enabled-thread count observed at each scheduling
// round; model programs rarely exceed a few dozen runnable threads.
var enabledBounds = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64}

// RunMetrics collects scheduler- and policy-level telemetry for a single
// execution. The scheduler records steps, context switches, the event
// stream (RunMetrics is a sched.Observer) and the enabled-thread histogram;
// the race-directed policy records postpone/resume/livelock-breaker counts
// and its scheduling decisions.
//
// Every method is safe on a nil receiver, so instrumented code calls probes
// unconditionally: a nil *RunMetrics is the off switch.
//
// RunMetrics is written from the controller goroutine only and must not be
// shared across concurrent executions.
type RunMetrics struct {
	steps     int
	switches  int
	decisions int
	events    [event.KindCount]int64

	postpones      int
	resumes        int
	livelockBreaks int

	enabled *Histogram
	wall    time.Duration
}

// NewRunMetrics returns an empty per-run metric set.
func NewRunMetrics() *RunMetrics {
	return &RunMetrics{enabled: NewHistogram(enabledBounds...)}
}

// OnEvent implements sched.Observer: events are tallied by kind, reusing the
// detector event stream so the scheduler needs no second instrumentation
// channel.
func (m *RunMetrics) OnEvent(e event.Event) {
	if m == nil {
		return
	}
	if e.Kind >= 0 && e.Kind < event.KindCount {
		m.events[e.Kind]++
	}
}

// ObserveEnabled records the enabled-thread count of one scheduling round.
func (m *RunMetrics) ObserveEnabled(n int) {
	if m == nil {
		return
	}
	m.enabled.Observe(float64(n))
}

// SetSteps records the execution's final step count.
func (m *RunMetrics) SetSteps(n int) {
	if m != nil {
		m.steps = n
	}
}

// SetSwitches records the execution's final context-switch count.
func (m *RunMetrics) SetSwitches(n int) {
	if m != nil {
		m.switches = n
	}
}

// SetWall records the execution's wall-clock duration.
func (m *RunMetrics) SetWall(d time.Duration) {
	if m != nil {
		m.wall = d
	}
}

// Decision counts one policy scheduling decision.
func (m *RunMetrics) Decision() {
	if m != nil {
		m.decisions++
	}
}

// Postpone counts one thread entering the policy's postponed set.
func (m *RunMetrics) Postpone() {
	if m != nil {
		m.postpones++
	}
}

// Resume counts one postponed thread released by the postponed⊇enabled rule
// (Algorithm 1 line 26).
func (m *RunMetrics) Resume() {
	if m != nil {
		m.resumes++
	}
}

// LivelockBreak counts one postponed thread released by the livelock
// monitor's age bound (§4).
func (m *RunMetrics) LivelockBreak() {
	if m != nil {
		m.livelockBreaks++
	}
}

// Stats snapshots the collected telemetry (nil for a nil receiver).
func (m *RunMetrics) Stats() *RunStats {
	if m == nil {
		return nil
	}
	return &RunStats{
		Steps:          m.steps,
		Switches:       m.switches,
		Decisions:      m.decisions,
		Events:         m.events,
		Postpones:      m.postpones,
		Resumes:        m.resumes,
		LivelockBreaks: m.livelockBreaks,
		Enabled:        m.enabled.Snapshot(),
		Wall:           m.wall,
	}
}

// RunStats is the immutable per-run telemetry surfaced on sched.Result when
// a RunMetrics was attached to the execution's Config.
type RunStats struct {
	// Steps is the number of scheduler steps (granted operations).
	Steps int `json:"steps"`
	// Switches counts grants whose thread differed from the previous grant —
	// the execution's context switches.
	Switches int `json:"switches"`
	// Decisions counts policy scheduling rounds (a round may grant nothing).
	Decisions int `json:"decisions"`
	// Events tallies observer events by event.Kind.
	Events [event.KindCount]int64 `json:"events"`
	// Postpones, Resumes and LivelockBreaks are the race-directed policy's
	// postponed-set traffic (zero under policies without postponement).
	Postpones      int `json:"postpones"`
	Resumes        int `json:"resumes"`
	LivelockBreaks int `json:"livelockBreaks"`
	// Enabled is the histogram of enabled-thread counts per round.
	Enabled HistogramSnapshot `json:"enabled"`
	// Wall is the execution's wall-clock duration.
	Wall time.Duration `json:"wallNs"`
}

// EventCount returns the tally for one event kind (0 for nil stats).
func (s *RunStats) EventCount(k event.Kind) int64 {
	if s == nil || k < 0 || k >= event.KindCount {
		return 0
	}
	return s.Events[k]
}
