package obs

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) for the obs metric
// types. The renderer is dependency-free by design — the exposition format
// is a few lines of escaping rules — and renders from immutable Snapshots,
// so it never holds a registry lock while writing to a network connection.
//
// Naming: snapshot metric names use dotted lower-case ("runs.total",
// "findings.dedup_rate"); exposition names are the sanitized form prefixed
// with the subsystem ("racefuzzer_runs_total"). Counters carry the
// conventional _total suffix (an existing ".total" segment is folded into
// it rather than doubled). Statement labels like "figure2/main.go:31" are
// exposed as label VALUES, never as metric names, so they only need value
// escaping.

// PromName sanitizes name into a legal Prometheus metric name under prefix:
// every character outside [a-zA-Z0-9_] becomes '_' (including ':', which is
// reserved for recording rules), runs of '_' collapse, and a leading digit
// gains a '_' guard.
func PromName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + len(name) + 1)
	if prefix != "" {
		b.WriteString(prefix)
		b.WriteByte('_')
	}
	lastUnderscore := prefix != ""
	for i := 0; i < len(name); i++ {
		c := name[i]
		legal := c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
		if !legal {
			c = '_'
		}
		if c == '_' {
			if lastUnderscore {
				continue
			}
			lastUnderscore = true
		} else {
			lastUnderscore = false
		}
		b.WriteByte(c)
	}
	out := strings.TrimSuffix(b.String(), "_")
	if out == "" {
		return "_"
	}
	if '0' <= out[0] && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// promCounterName is PromName plus the counter _total suffix convention.
func promCounterName(prefix, name string) string {
	n := PromName(prefix, name)
	if !strings.HasSuffix(n, "_total") {
		n += "_total"
	}
	return n
}

// PromEscapeLabel escapes a label value per the exposition format:
// backslash, double-quote and newline.
func PromEscapeLabel(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// PromLabel is one label pair of a sample.
type PromLabel struct {
	Name  string
	Value string
}

// PromSample is one sample of a labeled metric family.
type PromSample struct {
	Labels []PromLabel
	Value  float64
}

// promValue renders a float the way Prometheus expects (+Inf / -Inf / NaN
// spellings, shortest-round-trip otherwise).
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func promLabels(labels []PromLabel) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		// PromEscapeLabel already produces the exposition escaping; %q would
		// double-escape backslashes and quotes.
		parts[i] = PromName("", l.Name) + `="` + PromEscapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePromFamily writes one complete metric family: HELP/TYPE header and
// every sample. typ is "counter", "gauge", "histogram" or "untyped". The
// name must already be sanitized (use PromName).
func WritePromFamily(w io.Writer, name, help, typ string, samples ...PromSample) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%s%s %s\n", name, promLabels(s.Labels), promValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

// promQuantiles are the summary quantiles exposed per histogram.
var promQuantiles = []float64{0.5, 0.9, 0.99}

// writePromHistogram writes one histogram family (cumulative _bucket series
// with le labels, _sum, _count) plus a companion <name>_quantile gauge
// family carrying interpolated summary quantiles.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot, extra []PromLabel) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		le := append(append([]PromLabel(nil), extra...), PromLabel{Name: "le", Value: promValue(bound)})
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(le), cum); err != nil {
			return err
		}
	}
	cum = h.Count
	inf := append(append([]PromLabel(nil), extra...), PromLabel{Name: "le", Value: "+Inf"})
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(inf), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(extra), promValue(h.Sum)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(extra), h.Count); err != nil {
		return err
	}
	if h.Count == 0 {
		return nil
	}
	samples := make([]PromSample, 0, len(promQuantiles))
	for _, q := range promQuantiles {
		samples = append(samples, PromSample{
			Labels: append(append([]PromLabel(nil), extra...),
				PromLabel{Name: "quantile", Value: promValue(q)}),
			Value: h.Quantile(q),
		})
	}
	return WritePromFamily(w, name+"_quantile", "", "gauge", samples...)
}

// WriteProm renders a Snapshot as Prometheus exposition text: counters under
// sanitized _total names, gauges verbatim, histograms with cumulative
// buckets and interpolated quantile companions. Snapshots are sorted by
// construction, so the output is byte-stable for a given metric state.
func WriteProm(w io.Writer, prefix string, s Snapshot) error {
	for _, c := range s.Counters {
		if err := WritePromFamily(w, promCounterName(prefix, c.Name), "", "counter",
			PromSample{Value: float64(c.Value)}); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := WritePromFamily(w, PromName(prefix, g.Name), "", "gauge",
			PromSample{Value: g.Value}); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writePromHistogram(w, PromName(prefix, h.Name), h.Hist, nil); err != nil {
			return err
		}
	}
	return nil
}

// WriteRuntimeProm writes the Go runtime families every long-running
// campaign wants on a dashboard: goroutines, heap, GC activity.
func WriteRuntimeProm(w io.Writer) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	families := []struct {
		name, help, typ string
		value           float64
	}{
		{"go_goroutines", "Number of goroutines that currently exist.", "gauge", float64(runtime.NumGoroutine())},
		{"go_threads", "Number of OS threads created.", "gauge", float64(runtime.GOMAXPROCS(0))},
		{"go_memstats_alloc_bytes", "Number of bytes allocated and still in use.", "gauge", float64(ms.Alloc)},
		{"go_memstats_sys_bytes", "Number of bytes obtained from system.", "gauge", float64(ms.Sys)},
		{"go_memstats_heap_objects", "Number of allocated objects.", "gauge", float64(ms.HeapObjects)},
		{"go_gc_cycles_total", "Number of completed GC cycles.", "counter", float64(ms.NumGC)},
	}
	for _, f := range families {
		if err := WritePromFamily(w, f.name, f.help, f.typ, PromSample{Value: f.value}); err != nil {
			return err
		}
	}
	return nil
}

// SortPromSamples orders samples by their rendered label set, giving labeled
// families a deterministic exposition order.
func SortPromSamples(samples []PromSample) {
	sort.Slice(samples, func(i, j int) bool {
		return promLabels(samples[i].Labels) < promLabels(samples[j].Labels)
	})
}
