package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress is a Sink that prints periodic one-line campaign summaries —
// feedback for long campaigns without drowning stdout in per-run noise.
// It rate-limits by wall clock, printing at most one line per Every.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	every time.Duration
	now   func() time.Time // test seam

	start time.Time
	last  time.Time

	runs, races, exceptions, deadlocks int64
	lastPair                           string
}

// NewProgress reports to w at most once per every (default 2s).
func NewProgress(w io.Writer, every time.Duration) *Progress {
	if every <= 0 {
		every = 2 * time.Second
	}
	return &Progress{w: w, every: every, now: time.Now}
}

// Emit implements Sink.
func (p *Progress) Emit(rec RunRecord) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if p.start.IsZero() {
		p.start = now
		p.last = now
	}
	p.runs++
	if rec.RaceCreated {
		p.races++
	}
	if len(rec.Exceptions) > 0 {
		p.exceptions++
	}
	if rec.Deadlock {
		p.deadlocks++
	}
	if rec.Pair != "" {
		p.lastPair = rec.Pair
	}
	if now.Sub(p.last) >= p.every {
		p.last = now
		p.lineLocked(now)
	}
}

// Finish prints one final summary line (if any runs were recorded).
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.runs > 0 {
		p.lineLocked(p.now())
	}
}

func (p *Progress) lineLocked(now time.Time) {
	elapsed := now.Sub(p.start).Round(100 * time.Millisecond)
	line := fmt.Sprintf("progress: runs=%d races=%d exceptions=%d deadlocks=%d elapsed=%s",
		p.runs, p.races, p.exceptions, p.deadlocks, elapsed)
	if p.lastPair != "" {
		line += " target=" + p.lastPair
	}
	fmt.Fprintln(p.w, line)
}
