package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestJSONLSinkSeq: sequential emission stamps Seq 0, 1, 2, … in arrival
// order — the field the parallel determinism cross-checks compare.
func TestJSONLSinkSeq(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	for i := 0; i < 5; i++ {
		s.Emit(RunRecord{Phase: 2, Trial: i, StepsToRace: -1})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("wrote %d lines", len(lines))
	}
	for i, line := range lines {
		var rec RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", i, err)
		}
		if rec.Seq != int64(i) || rec.Trial != i {
			t.Fatalf("line %d: seq=%d trial=%d, want seq==trial==%d", i, rec.Seq, rec.Trial, i)
		}
	}
}

// TestJSONLSinkAutoFlush: with AutoFlush(n) every n-th record drains the
// buffer, so a `tail -f` reader sees complete lines mid-campaign; without
// it, nothing reaches the writer before Flush/Close.
func TestJSONLSinkAutoFlush(t *testing.T) {
	countLines := func(b *bytes.Buffer) int {
		s := b.String()
		if s == "" {
			return 0
		}
		if !strings.HasSuffix(s, "\n") {
			t.Fatalf("partial line reached the writer: %q", s)
		}
		return strings.Count(s, "\n")
	}

	var plain bytes.Buffer
	p := NewJSONLSink(&plain)
	for i := 0; i < 3; i++ {
		p.Emit(RunRecord{Trial: i})
	}
	if n := countLines(&plain); n != 0 {
		t.Fatalf("default sink leaked %d lines before Flush", n)
	}

	var buf bytes.Buffer
	s := NewJSONLSink(&buf).AutoFlush(2)
	s.Emit(RunRecord{Trial: 0})
	if n := countLines(&buf); n != 0 {
		t.Fatalf("flushed after 1 record with AutoFlush(2): %d lines", n)
	}
	s.Emit(RunRecord{Trial: 1})
	if n := countLines(&buf); n != 2 {
		t.Fatalf("after 2nd record: %d complete lines, want 2", n)
	}
	s.Emit(RunRecord{Trial: 2})
	if n := countLines(&buf); n != 2 {
		t.Fatalf("3rd record flushed early: %d lines", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countLines(&buf); n != 3 {
		t.Fatalf("after Close: %d lines, want 3", n)
	}
}

// TestJSONLSinkConcurrentEmit hammers one sink from many goroutines and
// checks the invariants parallel campaigns rely on: every record lands as
// valid single-line JSON (no interleaved bytes), nothing is lost, and the
// Seq stamps form exactly {0..n-1} in file order, so sorting by any stable
// key recovers a deterministic view of the log.
func TestJSONLSinkConcurrentEmit(t *testing.T) {
	const goroutines, perG = 8, 50
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Emit(RunRecord{
					Phase: 2, Kind: "race", PairIndex: g, Trial: i,
					Seed: int64(g*1000 + i), StepsToRace: -1,
				})
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != goroutines*perG {
		t.Fatalf("wrote %d lines, want %d", len(lines), goroutines*perG)
	}
	seenSeq := make(map[int64]bool)
	perGoroutine := make(map[int][]int)
	for i, line := range lines {
		var rec RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d corrupted under concurrency: %v\n%s", i, err, line)
		}
		if rec.Seq != int64(i) {
			t.Fatalf("line %d carries seq %d: file order must equal stamp order", i, rec.Seq)
		}
		if seenSeq[rec.Seq] {
			t.Fatalf("duplicate seq %d", rec.Seq)
		}
		seenSeq[rec.Seq] = true
		perGoroutine[rec.PairIndex] = append(perGoroutine[rec.PairIndex], rec.Trial)
	}
	// Each emitter's own records keep their relative order (the lock
	// serializes whole records, it never reorders an emitter against itself).
	for g, trials := range perGoroutine {
		if len(trials) != perG {
			t.Fatalf("goroutine %d: %d records, want %d", g, len(trials), perG)
		}
		if !sort.IntsAreSorted(trials) {
			t.Fatalf("goroutine %d records reordered: %v", g, trials)
		}
	}
}

// TestMultiSinkConcurrentEmit: the fan-out path used by campaigns (metrics +
// JSONL + progress) must also hold up under concurrent emitters.
func TestMultiSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	jsonl := NewJSONLSink(&buf)
	metrics := NewCampaignMetrics()
	m := MultiSink{metrics, jsonl}
	const n = 100
	var wg sync.WaitGroup
	wg.Add(4)
	for g := 0; g < 4; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				m.Emit(RunRecord{Phase: 2, StepsToRace: -1, Steps: 1})
			}
		}()
	}
	wg.Wait()
	if err := jsonl.Close(); err != nil {
		t.Fatal(err)
	}
	if metrics.Runs() != n {
		t.Fatalf("metrics aggregated %d runs, want %d", metrics.Runs(), n)
	}
	if got := strings.Count(buf.String(), "\n"); got != n {
		t.Fatalf("jsonl wrote %d lines, want %d", got, n)
	}
}
