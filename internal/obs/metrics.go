// Package obs is the observability layer for the RaceFuzzer pipeline:
// dependency-free counters, gauges and fixed-bucket histograms (this file),
// per-run scheduler probes (run.go), campaign-level aggregation
// (campaign.go), structured JSONL run logs (sink.go) and periodic progress
// reporting (progress.go).
//
// Two properties shape the design:
//
//   - Near-zero-cost off switch. Every probe method is safe on a nil
//     receiver and immediately returns; instrumented code (scheduler,
//     policies, pipelines) carries no flags and no conditionals beyond the
//     nil check the method itself performs. With no metrics attached, the
//     hot paths are byte-for-byte the pre-instrumentation ones.
//   - Probes never perturb the schedule. All recording happens synchronously
//     on the controller goroutine at already-deterministic points; nothing
//     here draws randomness, blocks, or communicates. A campaign run with
//     metrics on and off therefore replays the identical schedules.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"racefuzzer/internal/report"
)

// Counter is a monotonically increasing int64. The zero value is ready to
// use; all methods are nil-safe no-ops so callers need no guards.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64. The zero value is ready to use; methods are
// nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram over float64 samples. Bucket i
// counts samples v with v <= Bounds[i] (and > Bounds[i-1]); one overflow
// bucket counts samples above the last bound. Observe on a nil histogram is
// a no-op. A Histogram is not goroutine-safe; each run owns its own and
// campaign merging happens on one goroutine.
type Histogram struct {
	bounds []float64
	counts []int64
	count  int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Merge adds another histogram's samples into h. The two must have equal
// bounds (as produced by the same constructor call); Merge panics otherwise.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if len(h.bounds) != len(o.bounds) {
		panic("obs: merging histograms with different buckets")
	}
	for i, b := range h.bounds {
		if b != o.bounds[i] {
			panic("obs: merging histograms with different buckets")
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Snapshot returns an immutable copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil || h.count == 0 {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// HistogramSnapshot is a point-in-time copy of a Histogram, serializable to
// JSON and renderable in metric tables.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"` // len(Bounds)+1; last = overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Mean returns the sample mean (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket counts
// by linear interpolation within the bucket that holds the target rank — the
// standard Prometheus histogram_quantile estimator. The estimate is clamped
// to the observed [Min, Max] range so tiny samples don't report a bucket
// bound no sample reached; the overflow bucket yields Max. Returns 0 when
// the snapshot is empty and NaN-free for any q.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var seen float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		seen += float64(c)
		if seen < rank {
			continue
		}
		if i >= len(s.Bounds) {
			// Overflow bucket: no upper bound, report the observed max.
			return s.Max
		}
		lo := s.Min
		if i > 0 {
			lo = s.Bounds[i-1]
			if lo < s.Min {
				lo = s.Min
			}
		}
		hi := s.Bounds[i]
		if hi > s.Max {
			hi = s.Max
		}
		if hi < lo {
			return lo
		}
		within := (rank - (seen - float64(c))) / float64(c)
		return lo + (hi-lo)*within
	}
	return s.Max
}

// String renders the buckets compactly: "<=2:5 <=8:1 >8:0 (n=6 mean=2.3)".
func (s HistogramSnapshot) String() string {
	if s.Count == 0 {
		return "(empty)"
	}
	out := ""
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		if i < len(s.Bounds) {
			out += fmt.Sprintf("<=%s:%d", compactFloat(s.Bounds[i]), c)
		} else {
			out += fmt.Sprintf(">%s:%d", compactFloat(s.Bounds[len(s.Bounds)-1]), c)
		}
	}
	return fmt.Sprintf("%s (n=%d mean=%.1f min=%s max=%s)",
		out, s.Count, s.Mean(), compactFloat(s.Min), compactFloat(s.Max))
}

func compactFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// Registry is a named collection of metrics. Lookups get-or-create, so
// instrumentation sites need no registration step. A nil *Registry returns
// nil metrics from every lookup, and nil metrics no-op — the whole chain is
// inert when observability is off.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use (nil for a
// nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with bounds on first
// use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Snapshot captures every registered metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedCounter{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedGauge{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, NamedHistogram{Name: name, Hist: h.Snapshot()})
	}
	s.sort()
	return s
}

// NamedCounter is one counter in a Snapshot.
type NamedCounter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// NamedGauge is one gauge in a Snapshot.
type NamedGauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// NamedHistogram is one histogram in a Snapshot.
type NamedHistogram struct {
	Name string            `json:"name"`
	Hist HistogramSnapshot `json:"hist"`
}

// Snapshot is an immutable view of a metric set: JSON-serializable and
// renderable as a report table.
type Snapshot struct {
	Counters   []NamedCounter   `json:"counters,omitempty"`
	Gauges     []NamedGauge     `json:"gauges,omitempty"`
	Histograms []NamedHistogram `json:"histograms,omitempty"`
}

func (s *Snapshot) sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
}

// Table renders the snapshot as an aligned metric/value table.
func (s Snapshot) Table(title string) *report.Table {
	t := report.NewTable(title, "metric", "value")
	for _, c := range s.Counters {
		t.AddRow(c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		t.AddRow(g.Name, fmt.Sprintf("%.4g", g.Value))
	}
	for _, h := range s.Histograms {
		t.AddRow(h.Name, h.Hist.String())
	}
	return t
}
