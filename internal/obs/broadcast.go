package obs

import "sync"

// StreamEvent is the unit the observatory fans out to live subscribers: a
// run record, a corpus finding verdict derived from it, or a lifecycle
// marker. Seq is the broadcaster's own monotonic emission index (independent
// of any JSONL sink's), stamped under the broadcast lock so every subscriber
// observes the same total order.
type StreamEvent struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"` // "run", "finding", "snapshot", "shutdown"
	// Run is the record itself (Type "run").
	Run *RunRecord `json:"run,omitempty"`
	// Finding describes a corpus verdict (Type "finding").
	Finding *FindingEvent `json:"finding,omitempty"`
	// Metrics carries a campaign snapshot (Type "snapshot" and "shutdown").
	Metrics *Snapshot `json:"metrics,omitempty"`
}

// FindingEvent is the broadcast form of a corpus dedup verdict: a target's
// first confirming run was classified new or known.
type FindingEvent struct {
	Label   string `json:"label,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Pair    string `json:"pair,omitempty"`
	Verdict string `json:"verdict"` // "new" or "known"
	Seed    int64  `json:"seed"`
	Trial   int    `json:"trial"`
}

// Broadcast is a Sink that fans every record out to any number of
// subscribers with bounded per-client buffers. Publishing never blocks the
// campaign: a subscriber whose buffer is full is dropped on the spot (its
// channel is closed) and counted, the way a monitoring tap must behave —
// the observed process always wins over the observer.
//
// All methods are safe for concurrent use and on a nil receiver.
type Broadcast struct {
	mu      sync.Mutex
	seq     int64
	subs    map[*Subscriber]struct{}
	dropped int64
	closed  bool
}

// NewBroadcast returns an empty broadcaster.
func NewBroadcast() *Broadcast {
	return &Broadcast{subs: make(map[*Subscriber]struct{})}
}

// Emit implements Sink: the record is published as a "run" event, and when
// it carries a corpus finding verdict, a companion "finding" event follows
// in the same order for every subscriber.
func (b *Broadcast) Emit(rec RunRecord) {
	if b == nil {
		return
	}
	r := rec
	b.Publish(StreamEvent{Type: "run", Run: &r})
	if rec.Finding != "" {
		b.Publish(StreamEvent{Type: "finding", Finding: &FindingEvent{
			Label: rec.Label, Kind: rec.Kind, Pair: rec.Pair,
			Verdict: rec.Finding, Seed: rec.Seed, Trial: rec.Trial,
		}})
	}
}

// Publish stamps ev with the next sequence number and delivers it to every
// live subscriber without blocking. Returns the stamped sequence (-1 on a
// nil or closed broadcaster).
func (b *Broadcast) Publish(ev StreamEvent) int64 {
	if b == nil {
		return -1
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return -1
	}
	ev.Seq = b.seq
	b.seq++
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			// Slow client: evict rather than stall the campaign.
			delete(b.subs, s)
			close(s.ch)
			s.dropped = true
			b.dropped++
		}
	}
	return ev.Seq
}

// Subscribe registers a new subscriber with a buffer of buf events
// (minimum 1). The caller must drain Events() promptly or be dropped.
func (b *Broadcast) Subscribe(buf int) *Subscriber {
	if b == nil {
		return nil
	}
	if buf < 1 {
		buf = 1
	}
	s := &Subscriber{b: b, ch: make(chan StreamEvent, buf)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.ch)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Subscribers returns the number of live subscribers.
func (b *Broadcast) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Dropped returns the number of subscribers evicted for falling behind.
func (b *Broadcast) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Events returns the number of events published so far.
func (b *Broadcast) Events() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Close closes every subscriber channel and rejects further publishes.
func (b *Broadcast) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.ch)
	}
}

// Subscriber is one live tap on a Broadcast.
type Subscriber struct {
	b       *Broadcast
	ch      chan StreamEvent
	dropped bool
}

// Events is the subscriber's event channel. It is closed when the
// subscriber unsubscribes, is dropped for falling behind, or the
// broadcaster shuts down.
func (s *Subscriber) Events() <-chan StreamEvent {
	if s == nil {
		return nil
	}
	return s.ch
}

// Dropped reports whether the broadcaster evicted this subscriber for
// falling behind (as opposed to a graceful close).
func (s *Subscriber) Dropped() bool {
	if s == nil || s.b == nil {
		return false
	}
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.dropped
}

// Close unsubscribes. Safe to call after being dropped.
func (s *Subscriber) Close() {
	if s == nil || s.b == nil {
		return
	}
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; ok {
		delete(b.subs, s)
		close(s.ch)
	}
}
