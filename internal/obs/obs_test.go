package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"racefuzzer/internal/event"
)

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(RunRecord{Label: "demo", Phase: 2, Kind: "race", PairIndex: 1, Trial: 3,
		Seed: 42, RaceCreated: true, Races: 2, StepsToRace: 17, Steps: 90,
		Stats: &RunStats{Steps: 90}})
	s.Emit(RunRecord{Label: "demo", Phase: 1, PairIndex: -1, StepsToRace: -1})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not valid JSON: %v", err)
	}
	if rec["label"] != "demo" || rec["seed"] != float64(42) || rec["raceCreated"] != true {
		t.Fatalf("record = %v", rec)
	}
	// Stats rides along in-process only — never serialized.
	if _, ok := rec["Stats"]; ok {
		t.Fatal("Stats leaked into JSONL")
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not valid JSON: %v", err)
	}
	if rec["stepsToRace"] != float64(-1) {
		t.Fatalf("sentinel lost: %v", rec["stepsToRace"])
	}
}

func TestMultiSinkAndNilEmit(t *testing.T) {
	a, b := NewCampaignMetrics(), NewCampaignMetrics()
	m := MultiSink{a, nil, b}
	m.Emit(RunRecord{Phase: 2})
	if a.Runs() != 1 || b.Runs() != 1 {
		t.Fatalf("fan-out failed: %d %d", a.Runs(), b.Runs())
	}
	Emit(nil, RunRecord{}) // must not panic
	var nilC *CampaignMetrics
	nilC.Emit(RunRecord{})
	if nilC.Runs() != 0 {
		t.Fatal("nil campaign recorded")
	}
	if snap := nilC.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil campaign snapshot non-empty")
	}
}

func TestCampaignMetricsAggregation(t *testing.T) {
	c := NewCampaignMetrics()
	c.Emit(RunRecord{Phase: 1, Steps: 10, StepsToRace: -1,
		Stats: &RunStats{Steps: 10, Switches: 2, Decisions: 11}})
	c.Emit(RunRecord{Phase: 2, Steps: 20, StepsToRace: -1, Aborted: true,
		Stats: &RunStats{Steps: 20, Switches: 5, Decisions: 21, Postpones: 3}})
	st := NewRunMetrics()
	st.OnEvent(event.Event{Kind: event.KindMem})
	st.OnEvent(event.Event{Kind: event.KindMem})
	st.ObserveEnabled(2)
	st.SetWall(500 * time.Millisecond)
	c.Emit(RunRecord{Phase: 2, Steps: 30, RaceCreated: true, StepsToRace: 120,
		Races: 1, Exceptions: []string{"NPE"}, Stats: st.Stats()})

	s := c.Snapshot()
	counters := map[string]int64{}
	for _, nc := range s.Counters {
		counters[nc.Name] = nc.Value
	}
	want := map[string]int64{
		"runs.total": 3, "runs.phase1": 1, "runs.race": 1,
		"runs.exception": 1, "runs.aborted": 1, "runs.deadlock": 0,
		"sched.steps": 60, "sched.switches": 7,
		"policy.decisions": 32, "policy.postpones": 3,
		"events." + event.KindMem.String(): 2,
	}
	for name, w := range want {
		if counters[name] != w {
			t.Fatalf("%s = %d, want %d", name, counters[name], w)
		}
	}
	gauges := map[string]float64{}
	for _, ng := range s.Gauges {
		gauges[ng.Name] = ng.Value
	}
	if gauges["race.first_run"] != 2 {
		t.Fatalf("race.first_run = %v", gauges["race.first_run"])
	}
	if gauges["race.hit_rate"] != 1.0/3.0 {
		t.Fatalf("race.hit_rate = %v", gauges["race.hit_rate"])
	}
	if gauges["wall.seconds"] != 0.5 {
		t.Fatalf("wall.seconds = %v", gauges["wall.seconds"])
	}
	hists := map[string]HistogramSnapshot{}
	for _, nh := range s.Histograms {
		hists[nh.Name] = nh.Hist
	}
	if h := hists["steps_to_race"]; h.Count != 1 || h.Min != 120 {
		t.Fatalf("steps_to_race = %+v", h)
	}
	if h := hists["enabled_threads"]; h.Count != 1 || h.Min != 2 {
		t.Fatalf("enabled_threads = %+v", h)
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, time.Second)
	clock := time.Unix(0, 0)
	p.now = func() time.Time { return clock }

	p.Emit(RunRecord{Pair: "(a, b)"}) // starts the clock; no line yet
	if buf.Len() != 0 {
		t.Fatalf("premature output: %q", buf.String())
	}
	clock = clock.Add(500 * time.Millisecond)
	p.Emit(RunRecord{RaceCreated: true})
	if buf.Len() != 0 {
		t.Fatalf("rate limit broken: %q", buf.String())
	}
	clock = clock.Add(600 * time.Millisecond) // 1.1s elapsed: due
	p.Emit(RunRecord{Exceptions: []string{"NPE"}, Deadlock: true})
	out := buf.String()
	if !strings.Contains(out, "runs=3") || !strings.Contains(out, "races=1") ||
		!strings.Contains(out, "exceptions=1") || !strings.Contains(out, "deadlocks=1") ||
		!strings.Contains(out, "target=(a, b)") {
		t.Fatalf("progress line = %q", out)
	}
	buf.Reset()
	p.Finish()
	if !strings.Contains(buf.String(), "runs=3") {
		t.Fatalf("finish line = %q", buf.String())
	}

	// Nil progress is a no-op sink.
	var nilP *Progress
	nilP.Emit(RunRecord{})
	nilP.Finish()

	// A progress with no runs prints nothing on Finish.
	var quiet bytes.Buffer
	NewProgress(&quiet, 0).Finish()
	if quiet.Len() != 0 {
		t.Fatalf("empty finish printed: %q", quiet.String())
	}
}

func TestRunMetricsStats(t *testing.T) {
	var nilM *RunMetrics
	nilM.OnEvent(event.Event{Kind: event.KindMem})
	nilM.ObserveEnabled(1)
	nilM.SetSteps(1)
	nilM.SetSwitches(1)
	nilM.SetWall(time.Second)
	nilM.Decision()
	nilM.Postpone()
	nilM.Resume()
	nilM.LivelockBreak()
	if nilM.Stats() != nil {
		t.Fatal("nil metrics produced stats")
	}
	var nilS *RunStats
	if nilS.EventCount(event.KindMem) != 0 {
		t.Fatal("nil stats counted")
	}

	m := NewRunMetrics()
	m.OnEvent(event.Event{Kind: event.KindLock})
	m.OnEvent(event.Event{Kind: event.KindLock})
	m.OnEvent(event.Event{Kind: event.Kind(-1)}) // out of range: ignored
	m.ObserveEnabled(3)
	m.SetSteps(12)
	m.SetSwitches(4)
	m.SetWall(3 * time.Millisecond)
	m.Decision()
	m.Postpone()
	m.Resume()
	m.LivelockBreak()
	s := m.Stats()
	if s.Steps != 12 || s.Switches != 4 || s.Decisions != 1 ||
		s.Postpones != 1 || s.Resumes != 1 || s.LivelockBreaks != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.EventCount(event.KindLock) != 2 || s.EventCount(event.Kind(-1)) != 0 {
		t.Fatalf("event counts = %v", s.Events)
	}
	if s.Enabled.Count != 1 || s.Wall != 3*time.Millisecond {
		t.Fatalf("enabled/wall = %+v %v", s.Enabled, s.Wall)
	}
}
