package progen

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"racefuzzer/internal/core"
	"racefuzzer/internal/event"
	"racefuzzer/internal/hb"
	"racefuzzer/internal/hybrid"
	"racefuzzer/internal/sched"
)

// traceOf runs the program and returns its event trace as one string, plus
// the result.
func traceOf(p *Program, seed int64, pol sched.Policy, extra ...sched.Observer) (string, *sched.Result) {
	var b strings.Builder
	rec := sched.ObserverFunc(func(e event.Event) {
		b.WriteString(e.String())
		b.WriteByte('\n')
	})
	obs := append([]sched.Observer{rec}, extra...)
	res := sched.Run(p.Body(nil), sched.Config{Seed: seed, Policy: pol, Observers: obs, MaxSteps: 100_000})
	return b.String(), res
}

func policies() map[string]func() sched.Policy {
	return map[string]func() sched.Policy{
		"random":       func() sched.Policy { return sched.NewRandomPolicy() },
		"run-to-block": func() sched.Policy { return sched.NewRunToBlockPolicy(0.05) },
		"quantum":      func() sched.Policy { return sched.NewQuantumPolicy(4) },
		"sequential":   func() sched.Policy { return sched.SequentialPolicy{} },
		"rapos":        func() sched.Policy { return core.NewRAPOSPolicy() },
	}
}

// TestGeneratedProgramsAreDeterministic: the cornerstone replay property on
// 40 random programs × several policies: identical seeds give identical
// traces.
func TestGeneratedProgramsAreDeterministic(t *testing.T) {
	for gseed := int64(0); gseed < 40; gseed++ {
		p := Generate(gseed, Config{})
		for name, mk := range policies() {
			a, ra := traceOf(p, 77+gseed, mk())
			b, rb := traceOf(p, 77+gseed, mk())
			if a != b {
				t.Fatalf("gen %d policy %s: traces differ", gseed, name)
			}
			if (ra.Deadlock == nil) != (rb.Deadlock == nil) || ra.Steps != rb.Steps {
				t.Fatalf("gen %d policy %s: results differ: %+v vs %+v", gseed, name, ra, rb)
			}
		}
	}
}

// TestMutualExclusionOracle: the generator's lock-protected counter must be
// exact after every complete run, under every policy.
func TestMutualExclusionOracle(t *testing.T) {
	for gseed := int64(0); gseed < 40; gseed++ {
		p := Generate(gseed, Config{OrderedLocks: true}) // deadlock-free
		for name, mk := range policies() {
			for seed := int64(0); seed < 3; seed++ {
				var counter int
				res := sched.Run(p.Body(&counter), sched.Config{
					Seed: 1000 + seed, Policy: mk(), MaxSteps: 100_000,
				})
				if res.Deadlock != nil {
					t.Fatalf("gen %d policy %s: deadlock in an ordered-locks program: %v",
						gseed, name, res.Deadlock)
				}
				if res.Aborted {
					t.Fatalf("gen %d policy %s: aborted", gseed, name)
				}
				if counter != p.CounterIncrements {
					t.Fatalf("gen %d policy %s seed %d: counter %d, want %d",
						gseed, name, seed, counter, p.CounterIncrements)
				}
			}
		}
	}
}

// TestHBPairsSubsetOfHybridPairs: on any single trace, a pure happens-before
// race (with lock edges) is also a hybrid race — hb's ordering relation is a
// superset of hybrid's, and two accesses unordered under hb cannot hold a
// common lock. Checked on 60 random programs.
func TestHBPairsSubsetOfHybridPairs(t *testing.T) {
	checked := 0
	for gseed := int64(0); gseed < 60; gseed++ {
		p := Generate(gseed, Config{OrderedLocks: true})
		hy := hybrid.New()
		hbd := hb.New()
		_, res := traceOf(p, 500+gseed, sched.NewRandomPolicy(), hy, hbd)
		if res.Deadlock != nil || res.Aborted {
			continue
		}
		hybridPairs := make(map[event.StmtPair]bool)
		for _, q := range hy.Pairs() {
			hybridPairs[q] = true
		}
		for _, q := range hbd.Pairs() {
			checked++
			if !hybridPairs[q] {
				t.Fatalf("gen %d: hb-race %v not reported by hybrid (hybrid: %v)",
					gseed, q, hy.Pairs())
			}
		}
	}
	if checked == 0 {
		t.Fatal("no hb races observed across 60 programs — generator too tame")
	}
}

// TestHybridStrictlyMorePredictive: across the corpus, hybrid must report at
// least one pair that the SAME run's hb detector does not (the predictive
// gap that motivates phase 2).
func TestHybridStrictlyMorePredictive(t *testing.T) {
	gap := 0
	for gseed := int64(0); gseed < 60; gseed++ {
		p := Generate(gseed, Config{OrderedLocks: true})
		hy := hybrid.New()
		hbd := hb.New()
		if _, res := traceOf(p, 900+gseed, sched.NewRandomPolicy(), hy, hbd); res.Deadlock != nil {
			continue
		}
		hbPairs := make(map[event.StmtPair]bool)
		for _, q := range hbd.Pairs() {
			hbPairs[q] = true
		}
		for _, q := range hy.Pairs() {
			if !hbPairs[q] {
				gap++
			}
		}
	}
	if gap == 0 {
		t.Fatal("hybrid never predicted beyond hb across the corpus")
	}
}

// TestRaceFuzzerOnGeneratedPrograms: fuzz every potential pair of a few
// generated programs; confirmed races must carry coherent records and runs
// must terminate.
func TestRaceFuzzerOnGeneratedPrograms(t *testing.T) {
	confirmed := 0
	for gseed := int64(0); gseed < 8; gseed++ {
		p := Generate(gseed, Config{OrderedLocks: true})
		prog := func(mt *sched.Thread) { p.Body(nil)(mt) }
		opts := core.Options{Seed: 40 + gseed, Phase1Trials: 3, Phase2Trials: 12, MaxSteps: 100_000}
		rep := core.Analyze(prog, opts)
		for _, pr := range rep.Pairs {
			if pr.IsReal {
				confirmed++
				run := core.Replay(prog, pr.Pair, pr.FirstRaceSeed, opts)
				if !run.RaceCreated {
					t.Fatalf("gen %d: replay of %v seed %d lost the race", gseed, pr.Pair, pr.FirstRaceSeed)
				}
				for _, rr := range run.Races {
					if !rr.Target.Contains(rr.Pair.A) || !rr.Target.Contains(rr.Pair.B) {
						t.Fatalf("incoherent race record: %+v", rr)
					}
				}
			}
		}
	}
	if confirmed == 0 {
		t.Fatal("no real races confirmed across generated corpus")
	}
}

// TestDeadlocksArePossibleWithUnorderedLocks: sanity-check that the
// generator's nested unordered acquisitions genuinely produce deadlockable
// programs, and that deadlock detection + full unwinding work at corpus scale.
func TestDeadlocksArePossibleWithUnorderedLocks(t *testing.T) {
	sawDeadlock := false
	for gseed := int64(0); gseed < 60 && !sawDeadlock; gseed++ {
		p := Generate(gseed, Config{MaxLockDepth: 2, Locks: 2, OpsPerThread: 16})
		for seed := int64(0); seed < 10 && !sawDeadlock; seed++ {
			_, res := traceOf(p, seed, sched.NewRandomPolicy())
			if res.Deadlock != nil {
				sawDeadlock = true
			}
		}
	}
	if !sawDeadlock {
		t.Fatal("no generated program deadlocked — generator lost its nesting")
	}
}

// TestNoGoroutineLeaksAtCorpusScale runs hundreds of executions (including
// deadlocking ones, which require full unwind) and checks goroutines return
// to baseline.
func TestNoGoroutineLeaksAtCorpusScale(t *testing.T) {
	before := runtime.NumGoroutine()
	for gseed := int64(0); gseed < 30; gseed++ {
		p := Generate(gseed, Config{MaxLockDepth: 2})
		for seed := int64(0); seed < 5; seed++ {
			traceOf(p, seed, sched.NewRandomPolicy())
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+3 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+3 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, g)
	}
}

// TestGeneratorDeterminism: same seed ⇒ same program structure.
func TestGeneratorDeterminism(t *testing.T) {
	for gseed := int64(0); gseed < 20; gseed++ {
		a := Generate(gseed, Config{})
		b := Generate(gseed, Config{})
		if a.CounterIncrements != b.CounterIncrements {
			t.Fatalf("gen %d: counter plans differ", gseed)
		}
		if fmt.Sprintf("%v", a.scripts) != fmt.Sprintf("%v", b.scripts) {
			t.Fatalf("gen %d: scripts differ", gseed)
		}
	}
	if fmt.Sprintf("%v", Generate(1, Config{}).scripts) == fmt.Sprintf("%v", Generate(2, Config{}).scripts) {
		t.Fatal("different seeds generated identical programs")
	}
}

// TestScriptsAreLockBalanced: every generated script releases exactly what
// it acquires, in LIFO order.
func TestScriptsAreLockBalanced(t *testing.T) {
	for gseed := int64(0); gseed < 50; gseed++ {
		p := Generate(gseed, Config{MaxLockDepth: 3, Locks: 3})
		for ti, script := range p.scripts {
			var stack []int
			for pi, op := range script {
				switch op.kind {
				case opLock:
					stack = append(stack, op.arg)
				case opUnlock:
					if len(stack) == 0 || stack[len(stack)-1] != op.arg {
						t.Fatalf("gen %d thread %d pos %d: unbalanced unlock of %d (stack %v)",
							gseed, ti, pi, op.arg, stack)
					}
					stack = stack[:len(stack)-1]
				}
			}
			if len(stack) != 0 {
				t.Fatalf("gen %d thread %d: locks left held: %v", gseed, ti, stack)
			}
		}
	}
}
