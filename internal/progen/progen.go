// Package progen generates random — but fully deterministic — model
// programs from a seed. It exists to test the testing framework itself:
// metamorphic properties that must hold on *every* program (trace
// determinism, detector containment, mutual exclusion under every policy,
// absence of goroutine leaks) are checked over hundreds of generated
// programs, a far harsher regimen than the hand-written benchmarks.
//
// A generated program is a pure data structure (per-thread op scripts), so
// the same seed always denotes the same program regardless of how it is
// later scheduled.
package progen

import (
	"fmt"

	"racefuzzer/internal/event"
	"racefuzzer/internal/rng"
	"racefuzzer/internal/sched"
)

// Config bounds the generated program's shape.
type Config struct {
	// Threads is the number of worker threads (default 3, min 2).
	Threads int
	// Vars is the number of shared variables (default 4).
	Vars int
	// Locks is the number of locks (default 2).
	Locks int
	// OpsPerThread is each worker's script length (default 12).
	OpsPerThread int
	// MaxLockDepth bounds lock nesting (default 2). Nested acquisition in
	// random order means generated programs CAN deadlock — callers that need
	// deadlock-free programs set MaxLockDepth to 1 or OrderedLocks to true.
	MaxLockDepth int
	// OrderedLocks forces each thread to acquire locks in ascending ID order,
	// which makes deadlock impossible.
	OrderedLocks bool
}

func (c Config) withDefaults() Config {
	if c.Threads < 2 {
		c.Threads = 3
	}
	if c.Vars <= 0 {
		c.Vars = 4
	}
	if c.Locks <= 0 {
		c.Locks = 2
	}
	if c.OpsPerThread <= 0 {
		c.OpsPerThread = 12
	}
	if c.MaxLockDepth <= 0 {
		c.MaxLockDepth = 2
	}
	return c
}

// opKind is a script instruction.
type opKind int

const (
	opRead opKind = iota
	opWrite
	opNop
	opLock
	opUnlock
	opCount // counter increment under the dedicated counter lock
)

// scriptOp is one instruction of a thread script.
type scriptOp struct {
	kind opKind
	arg  int // var index or lock index
}

// Program is a generated program: scripts plus metadata for property checks.
type Program struct {
	Cfg     Config
	Seed    int64
	scripts [][]scriptOp

	// CounterIncrements is the total number of opCount instructions: after
	// any complete (non-deadlocked, non-aborted) execution, the shared
	// counter must equal this — the mutual-exclusion oracle.
	CounterIncrements int
}

// Generate builds a random program from seed under cfg.
func Generate(seed int64, cfg Config) *Program {
	cfg = cfg.withDefaults()
	r := rng.New(seed ^ 0x70726f67656e) // decoupled from scheduling streams
	p := &Program{Cfg: cfg, Seed: seed}
	for t := 0; t < cfg.Threads; t++ {
		var script []scriptOp
		var held []int // lock stack
		for len(script) < cfg.OpsPerThread {
			switch r.Intn(10) {
			case 0, 1, 2: // read
				script = append(script, scriptOp{opRead, r.Intn(cfg.Vars)})
			case 3, 4: // write
				script = append(script, scriptOp{opWrite, r.Intn(cfg.Vars)})
			case 5: // nop
				script = append(script, scriptOp{opNop, 0})
			case 6, 7: // lock or unlock
				if len(held) > 0 && r.Bool() {
					top := held[len(held)-1]
					held = held[:len(held)-1]
					script = append(script, scriptOp{opUnlock, top})
					continue
				}
				if len(held) >= cfg.MaxLockDepth {
					continue
				}
				l := r.Intn(cfg.Locks)
				if cfg.OrderedLocks && len(held) > 0 && l <= held[len(held)-1] {
					continue
				}
				if contains(held, l) {
					continue // keep scripts reentrancy-free for clarity
				}
				held = append(held, l)
				script = append(script, scriptOp{opLock, l})
			case 8: // counter increment (the mutual-exclusion oracle)
				script = append(script, scriptOp{opCount, 0})
				p.CounterIncrements++
			case 9: // short locked critical section touching a var
				if len(held) < cfg.MaxLockDepth {
					l := r.Intn(cfg.Locks)
					if !contains(held, l) && (!cfg.OrderedLocks || len(held) == 0 || l > held[len(held)-1]) {
						script = append(script,
							scriptOp{opLock, l},
							scriptOp{opWrite, r.Intn(cfg.Vars)},
							scriptOp{opUnlock, l})
					}
				}
			}
		}
		// Unwind any locks still held (scripts are balanced by construction).
		for i := len(held) - 1; i >= 0; i-- {
			script = append(script, scriptOp{opUnlock, held[i]})
		}
		p.scripts = append(p.scripts, script)
	}
	return p
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// stmtFor labels script positions so detectors see stable statement
// identities: thread index + position + op kind.
func (p *Program) stmtFor(thread, pos int, k opKind) event.Stmt {
	kinds := [...]string{"read", "write", "nop", "lock", "unlock", "count"}
	return event.StmtFor(fmt.Sprintf("gen%d:t%d.%d.%s", p.Seed, thread, pos, kinds[k]))
}

// Body returns the program as a runnable main-thread body. FinalCounter
// receives the counter's value at termination (valid only for complete runs).
func (p *Program) Body(finalCounter *int) func(*sched.Thread) {
	cfg := p.Cfg
	return func(mt *sched.Thread) {
		s := mt.Scheduler()
		vars := make([]event.MemLoc, cfg.Vars)
		for i := range vars {
			vars[i] = s.NewLoc(fmt.Sprintf("v%d", i))
		}
		locks := make([]event.LockID, cfg.Locks)
		for i := range locks {
			locks[i] = s.NewLock(fmt.Sprintf("l%d", i))
		}
		counterLock := s.NewLock("counterLock")
		counterLoc := s.NewLoc("counter")
		counter := 0

		kids := make([]*sched.Thread, len(p.scripts))
		for ti := range p.scripts {
			ti := ti
			kids[ti] = mt.Fork(fmt.Sprintf("gen-%d", ti), func(c *sched.Thread) {
				for pi, op := range p.scripts[ti] {
					stmt := p.stmtFor(ti, pi, op.kind)
					switch op.kind {
					case opRead:
						c.MemRead(vars[op.arg], stmt)
					case opWrite:
						c.MemWrite(vars[op.arg], stmt)
					case opNop:
						c.Nop(stmt)
					case opLock:
						c.LockAcquire(locks[op.arg], stmt)
					case opUnlock:
						c.LockRelease(locks[op.arg], stmt)
					case opCount:
						c.LockAcquire(counterLock, stmt)
						c.MemRead(counterLoc, stmt)
						v := counter
						c.MemWrite(counterLoc, stmt)
						counter = v + 1
						c.LockRelease(counterLock, stmt)
					}
				}
			})
		}
		for _, k := range kids {
			mt.Join(k)
		}
		if finalCounter != nil {
			*finalCounter = counter
		}
	}
}
