module racefuzzer

go 1.22
