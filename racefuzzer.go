// Package racefuzzer is a Go implementation of race-directed random testing
// — RaceFuzzer — from Koushik Sen's PLDI 2008 paper "Race Directed Random
// Testing of Concurrent Programs".
//
// RaceFuzzer is a two-phase active-testing technique:
//
//  1. An imprecise but predictive detector (hybrid lockset + happens-before
//     race detection) observes executions of a concurrent program and
//     reports pairs of statements that could potentially race.
//  2. For each reported pair, a race-directed random scheduler re-executes
//     the program: threads are scheduled randomly, but any thread about to
//     execute a statement of the pair is postponed until another thread
//     arrives at the pair touching the same memory location (with at least
//     one write). At that instant a real race has been created — no false
//     positive is possible — and the scheduler resolves it with a coin
//     flip, so errors caused by either order (exceptions, crashes) surface.
//
// Every execution is a deterministic function of one RNG seed, so a
// race-revealing run is replayed by re-running with the same seed — no
// event recording needed.
//
// Because Go's own goroutine scheduler cannot be controlled deterministically,
// programs under test are model programs written against the conc package
// (racefuzzer/internal/conc): explicit threads, instrumented shared
// variables, and Java-monitor-style locks, executed under a deterministic
// cooperative scheduler. See DESIGN.md for the substitution argument and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
//
// # Quick start
//
//	prog := func(t *racefuzzer.Thread) {
//		x := conc.NewVar(t, "x", 0)
//		l := conc.NewMutex(t, "L")
//		t1 := t.Fork("writer", func(c *racefuzzer.Thread) { x.Set(c, 1) })
//		l.Lock(t)
//		l.Unlock(t)
//		_ = x.Get(t)
//		t.Join(t1)
//	}
//	report := racefuzzer.Analyze(prog, racefuzzer.Options{Seed: 1})
//	for _, pair := range report.Pairs {
//		fmt.Println(pair) // real race? probability? exceptions?
//	}
package racefuzzer

import (
	"racefuzzer/internal/core"
	"racefuzzer/internal/event"
	"racefuzzer/internal/sched"
)

// Thread is a model thread handle; model programs receive their current
// thread explicitly.
type Thread = sched.Thread

// Program is a model program: the body of its main thread.
type Program = core.Program

// Options parameterizes the pipeline (seeds, trial counts, step bounds).
type Options = core.Options

// StmtPair is an unordered pair of statement labels — the unit phase 1
// reports and phase 2 targets.
type StmtPair = event.StmtPair

// Report is the full two-phase outcome: potential pairs and their verdicts.
type Report = core.Report

// PairReport is the phase-2 verdict for one pair: real or false alarm, the
// race-creation probability, and any exceptions its resolution exposed.
type PairReport = core.PairReport

// RunReport is the outcome of a single race-directed execution.
type RunReport = core.RunReport

// RealRace is a race condition RaceFuzzer actually created.
type RealRace = core.RealRace

// Result summarizes one scheduler execution (exceptions, deadlock, steps).
type Result = sched.Result

// Exception records a model-level exception that killed a thread.
type Exception = sched.Exception

// Analyze runs the complete two-phase pipeline on prog: hybrid detection to
// propose potentially racing pairs, then race-directed fuzzing of each pair.
func Analyze(prog Program, o Options) *Report {
	return core.Analyze(prog, o)
}

// DetectPotentialRaces runs phase 1 only.
func DetectPotentialRaces(prog Program, o Options) []StmtPair {
	return core.DetectPotentialRaces(prog, o)
}

// FuzzPair runs phase 2 for one pair: Options.Phase2Trials race-directed
// executions with derived seeds, aggregated into a verdict.
func FuzzPair(prog Program, pair StmtPair, pairIndex int, o Options) PairReport {
	return core.FuzzPair(prog, pair, pairIndex, o)
}

// FuzzRun performs one race-directed execution with an explicit seed.
func FuzzRun(prog Program, pair StmtPair, seed int64, o Options) *RunReport {
	return core.FuzzRun(prog, pair, seed, o)
}

// Replay re-executes a prior run from its seed — the paper's lightweight
// deterministic replay.
func Replay(prog Program, pair StmtPair, seed int64, o Options) *RunReport {
	return core.Replay(prog, pair, seed, o)
}

// StmtFor interns a statement label, for model programs that label their
// statements explicitly rather than by source position.
func StmtFor(name string) event.Stmt { return event.StmtFor(name) }

// MakeStmtPair builds a normalized statement pair.
func MakeStmtPair(a, b event.Stmt) StmtPair { return event.MakeStmtPair(a, b) }

// The generalized active-testing pipelines (§1 of the paper): the same
// predict-then-direct structure applied to deadlocks and atomicity
// violations.

// DeadlockReport is the verdict for one potential lock cycle.
type DeadlockReport = core.DeadlockReport

// AtomicityReport is the verdict for one inferred atomic block.
type AtomicityReport = core.AtomicityReport

// AnalyzeDeadlocks predicts potential deadlocks from lock-order-graph
// cycles, then confirms each by deadlock-directed scheduling.
func AnalyzeDeadlocks(prog Program, o Options) []DeadlockReport {
	return core.AnalyzeDeadlocks(prog, o)
}

// AnalyzeAtomicity infers intended-atomic read-modify-write blocks and
// confirms violations by interleaving an interferer inside each block.
func AnalyzeAtomicity(prog Program, o Options) []AtomicityReport {
	return core.AnalyzeAtomicity(prog, o)
}
