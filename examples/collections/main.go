// Collections example: reproduce the paper's §5.3 JDK bug — calling
// l1.containsAll(l2) and l2.removeAll(...) concurrently on
// Collections.synchronizedList wrappers throws
// ConcurrentModificationException / NoSuchElementException, because the
// inherited AbstractCollection.containsAll iterates its argument without the
// argument's lock.
//
//	go run ./examples/collections
//
// The example finds the racing statement pairs in the (model) library code,
// confirms them with RaceFuzzer, shows the exceptions, and demonstrates
// seed-exact replay of a crashing schedule.
package main

import (
	"fmt"

	"racefuzzer"
	"racefuzzer/internal/collections"
)

// driver is the paper's test-driver recipe: two synchronized lists, one
// thread calling containsAll, another removing through the wrapper lock.
func driver() racefuzzer.Program {
	return func(t *racefuzzer.Thread) {
		l1 := collections.NewSynchronizedList(t, "l1", collections.NewLinkedList(t, "raw1"))
		l2 := collections.NewSynchronizedList(t, "l2", collections.NewLinkedList(t, "raw2"))
		toRemove := collections.NewArrayList(t, "toRemove")
		for i := 0; i < 4; i++ {
			l1.Add(t, i)
			l2.Add(t, i)
			toRemove.Add(t, i)
		}
		a := t.Fork("containsAll", func(c *racefuzzer.Thread) {
			l1.ContainsAll(c, l2) // iterates l2 holding only l1's mutex
		})
		b := t.Fork("removeAll", func(c *racefuzzer.Thread) {
			l2.RemoveAll(c, toRemove) // mutates l2 under l2's mutex
		})
		t.Join(a)
		t.Join(b)
	}
}

func main() {
	opts := racefuzzer.Options{Seed: 7, Phase1Trials: 8, Phase2Trials: 100}
	report := racefuzzer.Analyze(driver(), opts)

	fmt.Printf("potential racing pairs in the collections library: %d\n", len(report.Potential))
	for _, pr := range report.Pairs {
		fmt.Printf("  %v\n", pr)
	}
	fmt.Printf("\nreal: %d, with exceptions: %d\n", report.RealCount(), report.ExceptionPairCount())

	for _, pr := range report.Pairs {
		if pr.FirstExceptionSeed == 0 {
			continue
		}
		run := racefuzzer.Replay(driver(), pr.Pair, pr.FirstExceptionSeed, racefuzzer.Options{})
		fmt.Printf("\nreplayed crashing schedule (pair %v, seed %d):\n", pr.Pair, pr.FirstExceptionSeed)
		for _, rr := range run.Races {
			fmt.Printf("  race created: %v\n", rr)
		}
		for _, ex := range run.Result.Exceptions {
			fmt.Printf("  thread %s(%s) crashed: %v\n", ex.Thread, ex.Name, ex.Err)
		}
		break
	}
	fmt.Println("\n(The containsAll code path works fine single-threaded — the synchronized")
	fmt.Println("wrapper just never overrode it to hold the argument's lock, exactly as §5.3 describes.)")
}
