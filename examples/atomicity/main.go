// Atomicity example: the other §1 generalization — infer intended-atomic
// read-modify-write blocks from traces (Atomizer-style) and direct the
// scheduler to interleave an interferer inside each one.
//
//	go run ./examples/atomicity
//
// The model is a ticket seller: each seller thread checks remaining
// inventory and then decrements it. One seller path holds the inventory
// lock across the check-and-decrement; the "fast path" reads and writes
// without it. The pipeline confirms only the fast path and demonstrates the
// resulting oversell.
package main

import (
	"fmt"

	"racefuzzer"
	"racefuzzer/internal/conc"
	"racefuzzer/internal/sched"
)

func seller(oversold *int) racefuzzer.Program {
	return func(t *racefuzzer.Thread) {
		tickets := conc.NewIntVar(t, "tickets", 2)
		sold := conc.NewIntVar(t, "sold", 0)
		invLock := conc.NewMutex(t, "inventoryLock")

		fastPath := func(c *racefuzzer.Thread) {
			if tickets.Get(c) > 0 { // ← read half of the unprotected block
				v := tickets.Get(c)
				tickets.Set(c, v-1) // ← write half
				invLock.Lock(c)
				sold.Add(c, 1)
				invLock.Unlock(c)
			}
		}
		slowPath := func(c *racefuzzer.Thread) {
			invLock.Lock(c)
			if tickets.Get(c) > 0 {
				tickets.Add(c, -1)
				sold.Add(c, 1)
			}
			invLock.Unlock(c)
		}

		a := t.Fork("fast-1", fastPath)
		b := t.Fork("fast-2", fastPath)
		cth := t.Fork("slow", slowPath)
		t.Join(a)
		t.Join(b)
		t.Join(cth)
		if s := sold.Get(t); s > 2 {
			*oversold++
			_ = s
		}
	}
}

func main() {
	var oversold int
	opts := racefuzzer.Options{Seed: 5, Phase1Trials: 8, Phase2Trials: 100}

	fmt.Println("phase 1: inferring intended-atomic read-modify-write blocks")
	reps := racefuzzer.AnalyzeAtomicity(seller(&oversold), opts)
	for _, r := range reps {
		fmt.Printf("  %v\n", r)
	}

	// Show the violation's consequence: drive many directed runs and count
	// oversells (three tickets sold out of an inventory of two).
	oversold = 0
	confirmed := 0
	for _, r := range reps {
		if !r.IsReal {
			continue
		}
		confirmed++
	}
	for i := int64(0); i < 200; i++ {
		sched.Run(seller(&oversold), sched.Config{Seed: 7000 + i})
	}
	fmt.Printf("\n%d block(s) confirmed violable.\n", confirmed)
	fmt.Printf("Undirected stress: oversold in %d/200 runs — the directed pipeline\n", oversold)
	fmt.Println("needs no luck: it interleaves the interferer inside the block on purpose.")
}
