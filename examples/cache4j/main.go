// Cache4j example: reproduce the paper's §5.3 cache4j bug — a race on the
// CacheCleaner's _sleep flag lets a user thread interrupt the cleaner after
// it already left its try/catch, so the InterruptedException lands in
// cleanup code and kills the thread.
//
//	go run ./examples/cache4j
//
// This example targets the specific harmful pair directly (the _sleep read
// vs. the finally-block reset), fuzzes it, and replays a crashing run.
package main

import (
	"fmt"

	"racefuzzer"
	"racefuzzer/internal/bench"
	"racefuzzer/internal/sched"
)

func main() {
	prog := bench.Cache4j(2, 3)
	opts := racefuzzer.Options{Seed: 11, Phase2Trials: 200}

	fmt.Println("target pair (from §5.3's code snippet):")
	fmt.Printf("  %v\n\n", bench.Cache4jSleepPair)

	rep := racefuzzer.FuzzPair(prog, bench.Cache4jSleepPair, 0, opts)
	fmt.Printf("verdict: %v\n", rep)

	if rep.FirstExceptionSeed != 0 {
		run := racefuzzer.Replay(bench.Cache4j(2, 3), bench.Cache4jSleepPair, rep.FirstExceptionSeed, opts)
		fmt.Printf("\nreplay of crashing seed %d:\n", rep.FirstExceptionSeed)
		for _, rr := range run.Races {
			fmt.Printf("  %v\n", rr)
		}
		for _, ex := range run.Result.Exceptions {
			fmt.Printf("  uncaught: %v in %s at step %d\n", ex.Err, ex.Name, ex.Step)
		}
	}

	// Contrast: how often does ordinary (undirected) testing find this?
	misses := 0
	const trials = 200
	for i := int64(0); i < trials; i++ {
		res := sched.Run(bench.Cache4j(2, 3), sched.Config{Seed: 9000 + i})
		if len(res.Exceptions) == 0 {
			misses++
		}
	}
	fmt.Printf("\nundirected random testing threw in %d/%d runs;\n", trials-misses, trials)
	fmt.Printf("RaceFuzzer threw in %d/%d runs targeting the pair.\n", rep.ExceptionRuns, rep.Trials)
}
