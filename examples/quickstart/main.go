// Quickstart: find and confirm a data race in a small model program using
// the public racefuzzer API.
//
//	go run ./examples/quickstart
//
// The program is the paper's Figure 1 pattern in miniature: a variable z
// with a real race, a variable x that only *looks* racy (it is implicitly
// synchronized by a flag under a lock), and an ERROR reachable only through
// one resolution of the real race. RaceFuzzer separates the two
// automatically — no manual inspection.
package main

import (
	"errors"
	"fmt"

	"racefuzzer"
	"racefuzzer/internal/conc"
)

var errBoom = errors.New("BOOM: z was already published")

func program() racefuzzer.Program {
	return func(t *racefuzzer.Thread) {
		x := conc.NewVar(t, "x", 0)
		y := conc.NewVar(t, "y", 0)
		z := conc.NewVar(t, "z", 0)
		lock := conc.NewMutex(t, "L")

		producer := t.Fork("producer", func(c *racefuzzer.Thread) {
			x.Set(c, 1) // protected by the y-flag protocol: never truly races
			lock.Lock(c)
			y.Set(c, 1)
			lock.Unlock(c)
			if z.Get(c) == 1 { // REAL race with the consumer's z.Set
				c.Throw(errBoom)
			}
		})
		consumer := t.Fork("consumer", func(c *racefuzzer.Thread) {
			z.Set(c, 1)
			lock.Lock(c)
			if y.Get(c) == 1 {
				_ = x.Get(c) // only reachable after the producer's x.Set
			}
			lock.Unlock(c)
		})
		t.Join(producer)
		t.Join(consumer)
	}
}

func main() {
	report := racefuzzer.Analyze(program(), racefuzzer.Options{
		Seed:         2024,
		Phase1Trials: 8,
		Phase2Trials: 100,
	})

	fmt.Printf("phase 1 reported %d potential racing pair(s):\n", len(report.Potential))
	for _, p := range report.Potential {
		fmt.Printf("  %v\n", p)
	}
	fmt.Println("\nphase 2 verdicts:")
	for _, pr := range report.Pairs {
		fmt.Printf("  %v\n", pr)
	}
	fmt.Printf("\n%d real race(s); %d lead to an exception; mean hit probability %.2f\n",
		report.RealCount(), report.ExceptionPairCount(), report.MeanProbability())

	// Deterministic replay: re-run a throwing execution from its seed.
	for _, pr := range report.Pairs {
		if pr.FirstExceptionSeed != 0 {
			run := racefuzzer.Replay(program(), pr.Pair, pr.FirstExceptionSeed, racefuzzer.Options{})
			fmt.Printf("\nreplay of seed %d: race at step %d, exception %v\n",
				pr.FirstExceptionSeed, run.Races[0].Step, run.Result.Exceptions[0].Err)
		}
	}
}
