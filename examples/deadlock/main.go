// Deadlock example: the generalized active-testing pipeline (§1 of the
// paper) applied to deadlocks instead of races — predict potential lock
// cycles from the lock-order graph, then direct the scheduler to complete
// each cycle.
//
//	go run ./examples/deadlock
//
// The model is the classic bank-transfer bug: transfer(a→b) locks a then b,
// so two opposite transfers can deadlock; a third "audited" transfer path
// takes a global gate lock first, which the analysis correctly rules out as
// a cycle participant.
package main

import (
	"fmt"

	"racefuzzer"
	"racefuzzer/internal/conc"
	"racefuzzer/internal/sched"
)

func bank() racefuzzer.Program {
	return func(t *racefuzzer.Thread) {
		balA := conc.NewIntVar(t, "balance.A", 100)
		balB := conc.NewIntVar(t, "balance.B", 100)
		lockA := conc.NewMutex(t, "account.A")
		lockB := conc.NewMutex(t, "account.B")
		gate := conc.NewMutex(t, "auditGate")

		transfer := func(c *racefuzzer.Thread, from, to *conc.Mutex, fb, tb *conc.IntVar, amt int) {
			from.Lock(c)
			to.Lock(c) // ← acquires in argument order: the bug
			fb.Add(c, -amt)
			tb.Add(c, amt)
			to.Unlock(c)
			from.Unlock(c)
		}

		t1 := t.Fork("transfer A→B", func(c *racefuzzer.Thread) {
			transfer(c, lockA, lockB, balA, balB, 10)
		})
		t2 := t.Fork("transfer B→A", func(c *racefuzzer.Thread) {
			transfer(c, lockB, lockA, balB, balA, 20)
		})
		t3 := t.Fork("audited transfer", func(c *racefuzzer.Thread) {
			gate.Lock(c) // audited path serializes through the gate
			transfer(c, lockA, lockB, balA, balB, 5)
			gate.Unlock(c)
		})
		t.Join(t1)
		t.Join(t2)
		t.Join(t3)
	}
}

func main() {
	opts := racefuzzer.Options{Seed: 11, Phase1Trials: 8, Phase2Trials: 100}

	fmt.Println("phase 1: lock-order-graph analysis over random executions")
	reps := racefuzzer.AnalyzeDeadlocks(bank(), opts)
	for _, r := range reps {
		fmt.Printf("  %v\n", r)
	}
	if len(reps) == 0 {
		fmt.Println("  (no potential cycles)")
		return
	}

	// Contrast with undirected testing: how often does plain random
	// scheduling stumble into the deadlock?
	hits := 0
	const trials = 100
	for i := int64(0); i < trials; i++ {
		res := sched.Run(bank(), sched.Config{Seed: 5000 + i})
		if res.Deadlock != nil {
			hits++
		}
	}
	fmt.Printf("\nundirected random testing deadlocked in %d/%d runs;\n", hits, trials)
	fmt.Printf("the deadlock-directed scheduler confirmed the cycle with p=%.2f.\n", reps[0].Probability)
	fmt.Println("\n(The audited path never participates: its gate lock makes the A/B")
	fmt.Println("nesting cycle-safe, and the analysis' gate rule knows it.)")
}
