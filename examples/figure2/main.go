// Figure-2 experiment (§3.2 of the paper): a race whose two statements are
// separated by an ever-longer prefix of untracked statements.
//
//	go run ./examples/figure2
//
// The claim under test: RaceFuzzer creates the race with probability 1 and
// reaches the ERROR with probability ½ regardless of the prefix length,
// while a simple random scheduler's chance of even witnessing the race
// decays to zero as the prefix grows.
package main

import (
	"fmt"

	"racefuzzer/internal/harness"
)

func main() {
	fmt.Println("Reproducing §3.2: probability of creating the Figure-2 race")
	fmt.Println("as a function of the number of statements before the racy read.")
	fmt.Println()
	points := harness.Figure2Sweep([]int{5, 10, 25, 50, 100, 250, 500}, 200, 42)
	fmt.Print(harness.RenderFigure2(points))
	fmt.Println()
	fmt.Println("Expected shape (paper): RaceFuzzer column pinned at 1.00 with the")
	fmt.Println("ERROR fraction ≈0.50, baselines decaying toward 0.00 as the prefix grows.")
}
